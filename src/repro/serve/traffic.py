"""Seed-deterministic traffic generation for the serving simulator.

A traffic generator produces the request stream a serving run replays: a
list of :class:`Request` records sorted by arrival time.  Everything is
driven by one ``numpy`` PCG64 generator seeded explicitly, so a fixed seed
yields a bit-identical request stream — the property the fixed-seed serving
tests pin, in the same spirit as the GA's batched-randomness contract.

Five generators cover the scenarios the serving layer models:

* :class:`PoissonTraffic` — memoryless arrivals at a constant offered rate,
  the canonical open-loop load model;
* :class:`BurstyTraffic` — an on/off modulated Poisson process (exponential
  burst/idle phase durations), stressing queue depth and batching;
* :class:`DiurnalTraffic` — a sinusoidally rate-modulated Poisson process
  (thinning construction), a compressed day/night load curve;
* :class:`TraceTraffic` — replay of a recorded trace file, so real request
  logs (or a previous run's ``save_trace``) can be re-served bit-identically;
* :class:`ClosedLoopTraffic` — *closed-loop* clients with a concurrency
  limit and think time: each client's next request is issued only when its
  previous one completes, so the offered rate adapts to the fleet instead
  of being fixed in advance.  Unlike the open-loop generators it cannot
  pregenerate a stream — pass the generator itself to
  :meth:`~repro.serve.simulator.ServingSimulator.run`, which injects
  arrivals dynamically as requests complete.

Generators are registered by name in :data:`TRAFFIC_GENERATORS`; the CLI's
``repro serve --traffic`` option routes here.
"""

from __future__ import annotations

import abc
import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

#: nanoseconds per second (simulated time is kept in ns like every latency
#: in the estimator stack)
_NS_PER_S = 1e9


@dataclass(frozen=True)
class Request:
    """One inference request: who arrives, for which model, and when.

    ``client`` tags the closed-loop client that issued the request (so the
    simulator can hand the completion back to the right client); open-loop
    generators leave it at ``-1``.  ``attempt`` counts fault-tolerant
    re-submissions: generators always issue attempt 0, and the simulator
    re-injects a request lost to a chip failure or timeout as attempt
    ``n + 1`` via :func:`retry_request` — same identity, new arrival time.
    ``priority`` orders queue admission: a request with a higher priority
    is inserted ahead of lower-priority queued work and its queue is
    preferred by :meth:`~repro.serve.scheduler.SchedulingPolicy.
    order_queues`.  Generators always issue priority 0; the simulator
    raises it for a retry on its final attempt when
    :attr:`~repro.serve.faults.FaultTolerance.retry_priority` is set.
    """

    request_id: int
    model: str
    arrival_ns: float
    client: int = -1
    attempt: int = 0
    priority: int = 0


def retry_request(request: Request, arrival_ns: float,
                  priority: Optional[int] = None) -> Request:
    """The next attempt of a failed request, re-arriving at ``arrival_ns``.

    Identity (id, model, client) is preserved — a retry is the same request
    trying again after its deterministic backoff, not new offered load.
    ``priority`` overrides the retry's queue priority (``None`` keeps the
    original's).
    """
    return dataclasses.replace(
        request, arrival_ns=float(arrival_ns), attempt=request.attempt + 1,
        priority=request.priority if priority is None else int(priority),
    )


class TrafficGenerator(abc.ABC):
    """Base class of the seed-deterministic request-stream generators."""

    #: registry name of the generator (the ``--traffic`` value)
    name: str = "base"

    def __init__(
        self,
        models: Union[str, Sequence[str]],
        num_requests: int = 200,
        seed: int = 0,
        model_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if isinstance(models, str):
            models = (models,)
        if not models:
            raise ValueError("traffic needs at least one model")
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        self.models: Tuple[str, ...] = tuple(models)
        self.num_requests = num_requests
        self.seed = seed
        if model_weights is not None:
            if len(model_weights) != len(self.models):
                raise ValueError("model_weights must match models")
            total = float(sum(model_weights))
            if total <= 0:
                raise ValueError("model_weights must sum to a positive value")
            model_weights = tuple(w / total for w in model_weights)
        self.model_weights: Optional[Tuple[float, ...]] = (
            tuple(model_weights) if model_weights is not None else None
        )

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _arrival_times_ns(self, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times (ns) of ``num_requests`` requests."""

    def generate(self) -> List[Request]:
        """The request stream: deterministic for a fixed seed.

        Arrival times are drawn first, model assignments second, so the two
        streams cannot interleave differently across generator subclasses.
        """
        rng = np.random.default_rng(self.seed)
        arrivals = self._arrival_times_ns(rng)
        if len(self.models) == 1:
            names = [self.models[0]] * len(arrivals)
        else:
            indices = rng.choice(
                len(self.models), size=len(arrivals), p=self.model_weights
            )
            names = [self.models[int(i)] for i in indices]
        return [
            Request(request_id=i, model=names[i], arrival_ns=float(t))
            for i, t in enumerate(arrivals)
        ]

    def describe(self) -> Dict[str, object]:
        """Flat description of the traffic for reports (JSON-compatible)."""
        return {
            "traffic": self.name,
            "models": list(self.models),
            "num_requests": self.num_requests,
            "seed": self.seed,
        }


class PoissonTraffic(TrafficGenerator):
    """Memoryless arrivals at a constant offered rate (requests/second)."""

    name = "poisson"

    def __init__(self, models, num_requests: int = 200, seed: int = 0,
                 rate_rps: float = 100.0, model_weights=None) -> None:
        super().__init__(models, num_requests, seed, model_weights)
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.rate_rps = rate_rps

    def _arrival_times_ns(self, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(_NS_PER_S / self.rate_rps, size=self.num_requests)
        return np.cumsum(gaps)

    def describe(self) -> Dict[str, object]:
        data = super().describe()
        data["rate_rps"] = self.rate_rps
        return data


class BurstyTraffic(TrafficGenerator):
    """On/off modulated Poisson arrivals (exponential phase durations).

    During a burst, requests arrive at ``rate_rps``; during idle phases at
    ``rate_rps * idle_factor`` (0 by default: silence).  Phase durations are
    exponential with means ``mean_burst_s`` / ``mean_idle_s``.  Bursts pile
    requests up faster than the fleet drains them, which is exactly the
    regime dynamic batching is for.
    """

    name = "bursty"

    def __init__(self, models, num_requests: int = 200, seed: int = 0,
                 rate_rps: float = 100.0, mean_burst_s: float = 0.05,
                 mean_idle_s: float = 0.05, idle_factor: float = 0.0,
                 model_weights=None) -> None:
        super().__init__(models, num_requests, seed, model_weights)
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if mean_burst_s <= 0 or mean_idle_s < 0:
            raise ValueError("phase durations must be positive")
        if not 0.0 <= idle_factor <= 1.0:
            raise ValueError("idle_factor must be in [0, 1]")
        self.rate_rps = rate_rps
        self.mean_burst_s = mean_burst_s
        self.mean_idle_s = mean_idle_s
        self.idle_factor = idle_factor

    def _arrival_times_ns(self, rng: np.random.Generator) -> np.ndarray:
        arrivals: List[float] = []
        t = 0.0
        burst = True
        while len(arrivals) < self.num_requests:
            mean_s = self.mean_burst_s if burst else self.mean_idle_s
            phase_end = t + rng.exponential(mean_s * _NS_PER_S)
            rate = self.rate_rps if burst else self.rate_rps * self.idle_factor
            if rate > 0:
                clock = t
                while len(arrivals) < self.num_requests:
                    clock += rng.exponential(_NS_PER_S / rate)
                    if clock >= phase_end:
                        break
                    arrivals.append(clock)
            t = phase_end
            burst = not burst
        return np.asarray(arrivals)

    def describe(self) -> Dict[str, object]:
        data = super().describe()
        data.update(rate_rps=self.rate_rps, mean_burst_s=self.mean_burst_s,
                    mean_idle_s=self.mean_idle_s, idle_factor=self.idle_factor)
        return data


class DiurnalTraffic(TrafficGenerator):
    """Sinusoidally rate-modulated Poisson arrivals (a compressed day).

    The instantaneous rate is ``base_rate_rps * (1 + amplitude *
    sin(2*pi*t/period_s))``; arrivals are generated by thinning a Poisson
    process at the peak rate, which is exact and stays deterministic because
    the candidate and acceptance draws come from the same seeded stream.
    """

    name = "diurnal"

    def __init__(self, models, num_requests: int = 200, seed: int = 0,
                 base_rate_rps: float = 100.0, amplitude: float = 0.8,
                 period_s: float = 1.0, model_weights=None) -> None:
        super().__init__(models, num_requests, seed, model_weights)
        if base_rate_rps <= 0:
            raise ValueError("base_rate_rps must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.base_rate_rps = base_rate_rps
        self.amplitude = amplitude
        self.period_s = period_s

    def _arrival_times_ns(self, rng: np.random.Generator) -> np.ndarray:
        peak = self.base_rate_rps * (1.0 + self.amplitude)
        omega = 2.0 * np.pi / (self.period_s * _NS_PER_S)
        arrivals: List[float] = []
        t = 0.0
        while len(arrivals) < self.num_requests:
            t += rng.exponential(_NS_PER_S / peak)
            rate = self.base_rate_rps * (1.0 + self.amplitude * np.sin(omega * t))
            if rng.random() < rate / peak:
                arrivals.append(t)
        return np.asarray(arrivals)

    def describe(self) -> Dict[str, object]:
        data = super().describe()
        data.update(base_rate_rps=self.base_rate_rps, amplitude=self.amplitude,
                    period_s=self.period_s)
        return data


class TraceTraffic(TrafficGenerator):
    """Replay of a recorded trace file (see :func:`save_trace`).

    The trace pins the whole stream — arrival times and model assignment —
    so a replayed run is bit-identical to the run that recorded it,
    whatever generator produced the original stream.
    """

    name = "trace"

    def __init__(self, path: str) -> None:
        self.path = path
        requests = load_trace(path)
        if not requests:
            raise ValueError(f"trace {path!r} contains no requests")
        models = sorted({r.model for r in requests})
        super().__init__(models, num_requests=len(requests), seed=0)
        self._requests = requests

    def _arrival_times_ns(self, rng: np.random.Generator) -> np.ndarray:
        return np.asarray([r.arrival_ns for r in self._requests])

    def generate(self) -> List[Request]:
        return list(self._requests)

    def describe(self) -> Dict[str, object]:
        data = super().describe()
        data["path"] = self.path
        return data


class ClosedLoopSession:
    """One run's worth of closed-loop client state (see :class:`ClosedLoopTraffic`).

    All randomness — think times and model assignments — is pre-drawn from
    the traffic seed and consumed in issue order, so the interaction with
    the (deterministic) simulator is bit-reproducible: the same seed always
    yields the same stream, whatever the fleet does with it.
    """

    def __init__(self, traffic: "ClosedLoopTraffic") -> None:
        rng = np.random.default_rng(traffic.seed)
        n = traffic.num_requests
        mean_think_ns = traffic.mean_think_s * _NS_PER_S
        # think times first, model assignments second — the same draw order
        # contract as TrafficGenerator.generate()
        self._think = (
            rng.exponential(mean_think_ns, size=n) if mean_think_ns > 0
            else np.zeros(n)
        )
        if len(traffic.models) == 1:
            self._names = [traffic.models[0]] * n
        else:
            indices = rng.choice(len(traffic.models), size=n,
                                 p=traffic.model_weights)
            self._names = [traffic.models[int(i)] for i in indices]
        self.num_requests = n
        self.clients = traffic.clients
        self.concurrency = traffic.concurrency
        self._next = 0
        #: every request issued so far, in issue order (for trace recording)
        self.issued: List[Request] = []

    # ------------------------------------------------------------------
    def model_counts(self) -> Dict[str, int]:
        """How many requests each model will receive over the whole session."""
        counts: Dict[str, int] = {}
        for name in self._names:
            counts[name] = counts.get(name, 0) + 1
        return counts

    def _issue(self, client: int, arrival_ns: float) -> Request:
        index = self._next
        self._next += 1
        request = Request(request_id=index, model=self._names[index],
                          arrival_ns=float(arrival_ns), client=client)
        self.issued.append(request)
        return request

    def initial(self) -> List[Request]:
        """The opening wave: every client fills its concurrency window."""
        slots = min(self.num_requests, self.clients * self.concurrency)
        return [
            self._issue(slot % self.clients, self._think[self._next])
            for slot in range(slots)
        ]

    def on_complete(self, request: Request, completion_ns: float) -> Optional[Request]:
        """The completed request's client issues its next request (or ``None``)."""
        if self._next >= self.num_requests:
            return None
        return self._issue(request.client,
                           completion_ns + self._think[self._next])


class ClosedLoopTraffic(TrafficGenerator):
    """Closed-loop clients: think, send, wait for the reply, repeat.

    ``clients`` concurrent clients each keep up to ``concurrency`` requests
    outstanding; a client issues its next request ``think`` seconds
    (exponential, mean ``mean_think_s``) after its previous one completes.
    Offered load is therefore *response-dependent* — a saturated fleet is
    never swamped beyond ``clients * concurrency`` outstanding requests,
    which is exactly how interactive traffic differs from the open-loop
    generators.  Requires simulator cooperation: pass the generator to
    :meth:`~repro.serve.simulator.ServingSimulator.run` instead of a
    pregenerated request list.
    """

    name = "closed"

    def __init__(self, models, num_requests: int = 200, seed: int = 0,
                 clients: int = 4, concurrency: int = 1,
                 mean_think_s: float = 0.0002, model_weights=None) -> None:
        super().__init__(models, num_requests, seed, model_weights)
        if clients <= 0:
            raise ValueError("clients must be positive")
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if mean_think_s < 0:
            raise ValueError("mean_think_s must be non-negative")
        self.clients = clients
        self.concurrency = concurrency
        self.mean_think_s = mean_think_s
        #: the most recent session (holds the realised stream after a run)
        self.last_session: Optional[ClosedLoopSession] = None

    def _arrival_times_ns(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError(
            "closed-loop arrivals depend on completions"
        )  # pragma: no cover - generate() is overridden below

    def generate(self) -> List[Request]:
        raise ValueError(
            "closed-loop traffic has no pregenerated stream: arrivals depend "
            "on completions; pass the generator itself to ServingSimulator.run()"
        )

    def session(self) -> ClosedLoopSession:
        """A fresh client-state session (one per simulator run)."""
        self.last_session = ClosedLoopSession(self)
        return self.last_session

    def describe(self) -> Dict[str, object]:
        data = super().describe()
        data.update(clients=self.clients, concurrency=self.concurrency,
                    mean_think_s=self.mean_think_s)
        return data


def save_trace(requests: Sequence[Request], path: str) -> None:
    """Record a request stream to a JSON trace file for later replay.

    Closed-loop client tags are preserved (the ``client`` field is written
    only for tagged requests, so open-loop traces keep the original shape).
    """
    entries: List[Dict[str, object]] = []
    for r in requests:
        entry: Dict[str, object] = {
            "id": r.request_id, "model": r.model, "arrival_ns": r.arrival_ns
        }
        if r.client >= 0:
            entry["client"] = r.client
        entries.append(entry)
    payload = {"version": 1, "requests": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def load_trace(path: str) -> List[Request]:
    """Read a trace file back into a sorted request stream.

    Raises ``ValueError`` (not a raw ``KeyError``/``TypeError``) for files
    that parse as JSON but lack the expected shape — traces are
    user-supplied, so malformed content is an expected input.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        requests = [
            Request(request_id=int(entry["id"]), model=str(entry["model"]),
                    arrival_ns=float(entry["arrival_ns"]),
                    client=int(entry.get("client", -1)))
            for entry in payload["requests"]
        ]
    except (KeyError, TypeError, ValueError, AttributeError) as err:
        raise ValueError(f"malformed trace file {path!r}: {err}") from None
    requests.sort(key=lambda r: (r.arrival_ns, r.request_id))
    return requests


#: Traffic generators by registry name (the ``--traffic`` values).
TRAFFIC_GENERATORS: Dict[str, Type[TrafficGenerator]] = {
    PoissonTraffic.name: PoissonTraffic,
    BurstyTraffic.name: BurstyTraffic,
    DiurnalTraffic.name: DiurnalTraffic,
    TraceTraffic.name: TraceTraffic,
    ClosedLoopTraffic.name: ClosedLoopTraffic,
}


def validate_traffic(name: str) -> None:
    """Raise ``ValueError`` for a name not in :data:`TRAFFIC_GENERATORS`."""
    if name not in TRAFFIC_GENERATORS:
        known = ", ".join(sorted(TRAFFIC_GENERATORS))
        raise ValueError(f"unknown traffic {name!r}; expected one of: {known}")
