"""Scheduling policies and dynamic batching for the serving simulator.

Two decisions happen at every dispatch opportunity, and this module owns
both:

* **Which batch size?** — :class:`DynamicBatcher` picks from the allowed
  batch sizes using the compiled plans' span-matrix latency curves
  ``WR + (FILL + (B-1)*BN)``: the weight-replacement cost ``WR`` amortises
  over the batch, so larger batches cost less *chip time per request* — but
  waiting to fill a larger batch delays the requests already queued.  The
  batcher compares per-request chip occupancy of dispatching now against
  waiting for the next larger batch size (estimated from the observed
  interarrival EMA) and holds only while waiting is provably favourable and
  within the batching-delay budget.
* **Which chip?** — a :class:`SchedulingPolicy`: FIFO (first idle chip),
  least-loaded (least cumulative busy time), latency-aware (fastest
  compiled plan for this model/batch — the policy that exploits
  heterogeneous S/M/L fleets), or fair (deficit-weighted round-robin
  across model queues for multi-tenant mixes, latency-aware chip choice).

When plan-switch cost is modelled (``REPRO_SERVE_SWITCH_COST``), the
latency-aware ranking uses the *effective* service latency
(:func:`~repro.serve.fleet.service_latency_ns`): a chip that would have
to switch plans pays the incoming plan's weight-replacement cost on top
of the compiled latency, so a slower chip whose crossbars already hold
the plan can beat a faster cold one.

A policy may also order the model queues competing for an idle chip
(:meth:`SchedulingPolicy.order_queues`).  The default is FIFO across
models — oldest head request first — which all policies except ``fair``
keep; ``fair`` serves the model with the largest deficit (fewest requests
served so far), breaking ties FIFO, so one tenant's burst cannot starve
another's queue.  Every ordering respects ``Request.priority`` first: a
final-attempt retry promoted by ``FaultTolerance.retry_priority`` is
served ahead of fresh arrivals (generators issue priority 0, so the knob
is inert unless enabled).

Policies are registered by name in :data:`POLICIES`; the CLI's
``repro serve --policy`` option routes here.  Everything is deterministic:
ties break on worker index, and the batcher consumes no randomness.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Type

from repro.serve.fleet import ChipWorker, plan_for, service_latency_ns
from repro.serve.plans import PlanCache
from repro.serve.traffic import Request


class SchedulingPolicy(abc.ABC):
    """Chooses the chip a batch is dispatched to (and orders model queues)."""

    #: registry name of the policy (the ``--policy`` value)
    name: str = "base"

    @abc.abstractmethod
    def choose_worker(
        self,
        idle_workers: Sequence[ChipWorker],
        model: str,
        batch: int,
        plans: PlanCache,
        now_ns: float,
        switch_cost: bool = False,
    ) -> ChipWorker:
        """Pick one of the idle workers for a (model, batch) dispatch."""

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget any per-run state (called at the start of every run)."""

    def order_queues(self, queues: Dict[str, "Deque[Request]"]) -> List[str]:
        """Order of the non-empty model queues competing for an idle chip.

        The default is FIFO across models: oldest head request first, ties
        broken on request id — except that a queue whose head carries a
        raised :attr:`~repro.serve.traffic.Request.priority` (a retry on
        its final attempt under ``FaultTolerance.retry_priority``) is
        served before any plain queue regardless of arrival order.  All
        generator-issued requests carry priority 0, so without the
        retry-priority knob this is exactly the historical FIFO order.
        """
        return sorted(
            (model for model, queue in queues.items() if queue),
            key=lambda m: (-queues[m][0].priority,
                           queues[m][0].arrival_ns, queues[m][0].request_id),
        )

    def note_dispatch(self, model: str, served: int) -> None:
        """Record that ``served`` requests of ``model`` were dispatched."""


class FifoPolicy(SchedulingPolicy):
    """First idle chip in fleet order — the baseline policy."""

    name = "fifo"

    def choose_worker(self, idle_workers, model, batch, plans, now_ns,
                      switch_cost=False):
        return idle_workers[0]


class LeastLoadedPolicy(SchedulingPolicy):
    """Idle chip with the least cumulative busy time (ties on index)."""

    name = "least_loaded"

    def choose_worker(self, idle_workers, model, batch, plans, now_ns,
                      switch_cost=False):
        return min(idle_workers, key=lambda w: (w.busy_ns, w.index))


class LatencyAwarePolicy(SchedulingPolicy):
    """Idle chip whose compiled plan serves this (model, batch) fastest.

    On a homogeneous fleet this degrades to least-loaded (all plans equal);
    on a heterogeneous fleet it routes work to the chip class with the
    shortest service latency, falling back to slower classes only when the
    fast ones are busy.  With plan-switch cost modelled the ranking uses
    the effective latency — a cold chip pays the incoming plan's
    weight-replacement term on top of the compiled latency — so a slower
    chip already holding the plan can win over a faster cold one.
    """

    name = "latency"

    def choose_worker(self, idle_workers, model, batch, plans, now_ns,
                      switch_cost=False):
        # plan_for prices a degraded-DRAM chip on its scaled timings, and
        # service_latency_ns folds in straggler factors — so a faulted chip
        # competes at its true current speed, not its nominal one
        return min(
            idle_workers,
            key=lambda w: (
                service_latency_ns(plan_for(plans, w, model, batch), w,
                                   switch_cost),
                w.busy_ns, w.index,
            ),
        )


class FairPolicy(LatencyAwarePolicy):
    """Deficit-weighted round-robin across model queues (multi-tenant).

    Chip choice is latency-aware; *queue* choice serves the model with the
    fewest requests served so far this run (the largest deficit under
    equal per-model weights), breaking ties FIFO on the oldest head
    request.  A bursty tenant therefore cannot monopolise the fleet while
    another tenant's queue ages — the trade the per-model SLO attainment
    blocks in the serving report make visible.
    """

    name = "fair"

    def __init__(self) -> None:
        self._served: Dict[str, int] = {}

    def reset(self) -> None:
        self._served.clear()

    def order_queues(self, queues):
        # a raised head priority (final-attempt retry) still pre-empts the
        # deficit order: a request out of attempts beats fairness bookkeeping
        return sorted(
            (model for model, queue in queues.items() if queue),
            key=lambda m: (-queues[m][0].priority, self._served.get(m, 0),
                           queues[m][0].arrival_ns, queues[m][0].request_id),
        )

    def note_dispatch(self, model, served):
        self._served[model] = self._served.get(model, 0) + served


#: Scheduling policies by registry name (the ``--policy`` values).
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    LatencyAwarePolicy.name: LatencyAwarePolicy,
    FairPolicy.name: FairPolicy,
}


def validate_policy(policy: str) -> None:
    """Raise ``ValueError`` for a name not in :data:`POLICIES`."""
    if policy not in POLICIES:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown policy {policy!r}; expected one of: {known}")


def make_policy(policy: str) -> SchedulingPolicy:
    """Construct a scheduling policy by registry name."""
    validate_policy(policy)
    return POLICIES[policy]()


class DynamicBatcher:
    """Chooses batch sizes from the compiled plans' per-batch latency curves.

    ``batch_sizes`` is the allowed set (plans exist per size); ``max_wait_us``
    bounds how long the oldest queued request may be held back to fill a
    larger batch (0 disables holding: work-conserving greedy batching).
    """

    def __init__(self, batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
                 max_wait_us: float = 0.0) -> None:
        sizes = sorted(set(int(b) for b in batch_sizes))
        if not sizes or sizes[0] <= 0:
            raise ValueError("batch_sizes must be positive integers")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be non-negative")
        self.batch_sizes: Tuple[int, ...] = tuple(sizes)
        self.max_wait_ns = max_wait_us * 1e3

    # ------------------------------------------------------------------
    def dispatch_size(self, queue_len: int) -> int:
        """The batch size a forced dispatch uses for ``queue_len`` requests.

        The largest allowed size that the queue fills; when the queue is
        shorter than the smallest allowed size, the smallest size is used as
        a padded batch (the plan executes at its compiled batch size, the
        spare slots ride along empty).
        """
        fitting = [b for b in self.batch_sizes if b <= queue_len]
        return fitting[-1] if fitting else self.batch_sizes[0]

    def choose(
        self,
        queue_len: int,
        now_ns: float,
        oldest_arrival_ns: float,
        ema_interarrival_ns: float,
        latency_of: Callable[[int], float],
        more_arrivals: bool,
    ) -> Tuple[int, Optional[float]]:
        """Dispatch decision for one model queue with an idle chip available.

        Returns ``(batch, None)`` to dispatch now, or ``(0, deadline_ns)``
        to hold the queue: the simulator re-decides at every arrival and
        forces a dispatch when the deadline passes.  ``latency_of(b)`` is
        the service latency of the candidate plan at batch ``b`` (from the
        plan cache, i.e. the span-matrix latency curve).
        """
        if queue_len <= 0:
            raise ValueError("choose() needs a non-empty queue")
        b_now = self.dispatch_size(queue_len)
        larger = [b for b in self.batch_sizes if b > queue_len]
        if not larger or not more_arrivals or self.max_wait_ns <= 0:
            return b_now, None
        deadline = oldest_arrival_ns + self.max_wait_ns
        if now_ns >= deadline:
            return b_now, None
        b_next = larger[0]
        if not math.isfinite(ema_interarrival_ns):
            return b_now, None  # no rate estimate yet: stay work-conserving
        wait_ns = (b_next - queue_len) * ema_interarrival_ns
        if now_ns + wait_ns > deadline:
            return b_now, None
        # chip occupancy per request: hold only if filling the next batch
        # size is cheaper even counting the expected fill time
        served_now = min(b_now, queue_len)  # padded batches serve the queue only
        occupancy_now = latency_of(b_now) / served_now
        occupancy_next = (latency_of(b_next) + wait_ns) / b_next
        if occupancy_next < occupancy_now:
            return 0, deadline
        return b_now, None
