"""Discrete-event serving simulator: request streams against a chip fleet.

The simulator replays a seed-deterministic request stream
(:mod:`repro.serve.traffic`) against a :class:`~repro.serve.fleet.Fleet` of
chips running compiled partition plans (:mod:`repro.serve.plans`), with a
:class:`~repro.serve.scheduler.SchedulingPolicy` choosing chips and a
:class:`~repro.serve.scheduler.DynamicBatcher` choosing batch sizes.  It
produces a :class:`ServingReport` with the quantities the paper's
single-inference metrics are a proxy for: sustained throughput, p50/p95/p99
request latency, queue depths, per-chip utilisation and energy.

Three event kinds drive the loop, in a deterministic total order
``(time, kind, sequence)``:

* **chip-free** — a chip finished its batch; its requests complete (and,
  under closed-loop traffic, their clients issue follow-up requests —
  arrivals are injected into the live event heap, they need not be known
  up front).
* **arrival** — a request joins its model's FIFO queue (and updates the
  per-model interarrival EMA the batcher's wait estimates use; zero gaps
  from simultaneous arrivals are skipped — they carry no rate information
  and would collapse the EMA toward zero).
* **batch-deadline** — a held queue's batching-delay budget expired; the
  next dispatch for that model is forced.

After every event the simulator dispatches greedily: while an idle chip and
a non-empty queue exist (queues ordered by the policy — FIFO across models
by default, deficit round-robin under the ``fair`` policy), the batcher
picks a size, the policy picks a chip, and the batch occupies the chip for
the plan's service latency.  With plan-switch cost modelled
(:func:`~repro.serve.fleet.switch_cost_enabled`), the service latency
depends on what the chip's crossbars already hold: a plan switch pays the
incoming plan's weight-replacement term on top of the compiled latency
(and is counted per chip), a warm re-dispatch pays the compiled latency
unchanged.  Nothing consumes randomness, so a fixed-seed request stream
yields a bit-identical report — including across cold-cache and warm-cache
runs (plan-cache statistics are reported, but deliberately excluded from
:meth:`ServingReport.as_dict`'s deterministic core, see
``determinism_dict``).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.serve.fleet import (
    Fleet,
    is_plan_switch,
    service_latency_ns,
    switch_cost_enabled,
)
from repro.serve.plans import PlanCache
from repro.serve.scheduler import DynamicBatcher, SchedulingPolicy, make_policy
from repro.serve.traffic import ClosedLoopTraffic, Request

#: deterministic event ordering: completions free chips before arrivals at
#: the same instant, and deadlines fire last
_EVENT_FREE, _EVENT_ARRIVAL, _EVENT_DEADLINE = 0, 1, 2

#: smoothing factor of the per-model interarrival EMA
_EMA_ALPHA = 0.2


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class ServingReport:
    """Outcome of one serving run (all quantities deterministic per seed).

    Two histograms describe the batching mix: ``batch_histogram`` counts
    the *nominal* compiled batch size of every dispatch (the plan that
    occupied the chip — padded slots included, which is what latency and
    energy are charged for), while ``served_histogram`` counts the
    requests each dispatch actually served.  They differ exactly on padded
    batches, and ``mean_batch`` is served requests per dispatch
    (``completed / batches``) — consistent with ``served_histogram``.
    """

    fleet_spec: str
    policy: str
    traffic: Dict[str, object]
    models: Tuple[str, ...]
    optimizer: str
    mode: str
    batch_sizes: Tuple[int, ...]
    max_wait_us: float
    num_requests: int
    completed: int
    makespan_ms: float
    throughput_rps: float
    offered_rps: float
    latency_ms: Dict[str, float]
    wait_ms: Dict[str, float]
    queue_depth: Dict[str, float]
    batches: int
    mean_batch: float
    batch_histogram: Dict[int, int]
    served_histogram: Dict[int, int]
    padded_batches: int
    per_chip: List[Dict[str, object]]
    total_energy_mj: float
    energy_per_request_mj: float
    #: whether plan-switch weight-replacement cost was modelled
    switch_cost: bool = False
    #: total plan switches across the fleet (0 when switch cost is off)
    plan_switches: int = 0
    #: total weight-replacement time charged to switches (ms)
    switch_ms: float = 0.0
    #: per-model SLO blocks (only for models given a target): target,
    #: p50/p95/p99 latency and the attained fraction
    slo: Dict[str, Dict[str, float]] = field(default_factory=dict)
    plan_cache: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def determinism_dict(self) -> Dict[str, object]:
        """The seed-deterministic core of the report.

        Everything except the plan-cache counters, which legitimately differ
        between cold-cache and warm-cache runs of the same seed; the
        fixed-seed replay tests compare exactly this dictionary.
        """
        data = self.as_dict()
        data.pop("plan_cache", None)
        return data

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-compatible dictionary (for serialization).

        The ``switch`` block appears only when plan-switch cost was
        modelled and the ``slo`` block only when SLO targets were set, so
        a run with both features off serializes exactly like the
        switch-oblivious model did.
        """
        data: Dict[str, object] = {
            "fleet": self.fleet_spec,
            "policy": self.policy,
            "traffic": dict(self.traffic),
            "models": list(self.models),
            "optimizer": self.optimizer,
            "mode": self.mode,
            "batch_sizes": list(self.batch_sizes),
            "max_wait_us": self.max_wait_us,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "makespan_ms": self.makespan_ms,
            "throughput_rps": self.throughput_rps,
            "offered_rps": self.offered_rps,
            "latency_ms": dict(self.latency_ms),
            "wait_ms": dict(self.wait_ms),
            "queue_depth": dict(self.queue_depth),
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "batch_histogram": {str(k): v for k, v in sorted(self.batch_histogram.items())},
            "served_histogram": {str(k): v for k, v in sorted(self.served_histogram.items())},
            "padded_batches": self.padded_batches,
            "per_chip": [dict(row) for row in self.per_chip],
            "total_energy_mj": self.total_energy_mj,
            "energy_per_request_mj": self.energy_per_request_mj,
        }
        if self.switch_cost:
            data["switch"] = {
                "plan_switches": self.plan_switches,
                "switch_ms": self.switch_ms,
            }
        if self.slo:
            data["slo"] = {model: dict(block)
                           for model, block in sorted(self.slo.items())}
        data["plan_cache"] = dict(self.plan_cache)
        return data

    def summary_row(self) -> Dict[str, object]:
        """One flat headline row (for tables and benchmarks)."""
        return {
            "fleet": self.fleet_spec,
            "policy": self.policy,
            "traffic": str(self.traffic.get("traffic", "")),
            "requests": self.completed,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency_ms.get("p50", 0.0),
            "p95_ms": self.latency_ms.get("p95", 0.0),
            "p99_ms": self.latency_ms.get("p99", 0.0),
            "mean_batch": self.mean_batch,
            "plan_switches": self.plan_switches,
            "utilisation": (
                sum(float(row["utilisation"]) for row in self.per_chip) / len(self.per_chip)
                if self.per_chip else 0.0
            ),
            "energy_per_request_mj": self.energy_per_request_mj,
        }


class ServingSimulator:
    """Replays a request stream against a fleet of chips.

    ``switch_cost`` toggles plan-switch weight-replacement modelling
    (``None`` follows the ``REPRO_SERVE_SWITCH_COST`` environment default,
    which is on).  ``slos`` maps model names to latency targets in
    milliseconds; models with a target get a per-model percentile and
    attainment block in the report.
    """

    def __init__(
        self,
        fleet: Fleet,
        plan_cache: PlanCache,
        policy: Union[str, SchedulingPolicy] = "latency",
        batcher: Optional[DynamicBatcher] = None,
        batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
        max_wait_us: float = 0.0,
        switch_cost: Optional[bool] = None,
        slos: Optional[Dict[str, float]] = None,
    ) -> None:
        self.fleet = fleet
        self.plan_cache = plan_cache
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.batcher = (
            batcher if batcher is not None
            else DynamicBatcher(batch_sizes=batch_sizes, max_wait_us=max_wait_us)
        )
        self.switch_cost = (
            switch_cost_enabled() if switch_cost is None else bool(switch_cost)
        )
        self.slos: Dict[str, float] = dict(slos or {})
        for model, target_ms in self.slos.items():
            if target_ms <= 0:
                raise ValueError(
                    f"SLO target must be positive, got {model}={target_ms}"
                )

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Union[Sequence[Request], ClosedLoopTraffic],
        traffic_info: Optional[Dict[str, object]] = None,
    ) -> ServingReport:
        """Simulate serving the request stream; returns the full report.

        ``requests`` is either a pregenerated list (open-loop traffic,
        trace replay) or a :class:`~repro.serve.traffic.ClosedLoopTraffic`
        generator, whose clients issue each follow-up request only when
        the previous one completes — those arrivals are injected into the
        event heap mid-run.
        """
        session = None
        if isinstance(requests, ClosedLoopTraffic):
            if traffic_info is None:
                traffic_info = requests.describe()
            session = requests.session()
            initial = session.initial()
            expected = session.num_requests
            remaining: Dict[str, int] = session.model_counts()
        else:
            initial = sorted(requests, key=lambda r: (r.arrival_ns, r.request_id))
            expected = len(initial)
            remaining = {}
            for request in initial:
                remaining[request.model] = remaining.get(request.model, 0) + 1
        if not initial:
            raise ValueError("cannot simulate an empty request stream")
        self.fleet.reset()
        self.policy.reset()

        # --- event heap: (time, kind, seq, payload) ---------------------
        events: List[Tuple[float, int, int, object]] = []
        seq = 0
        for request in initial:
            heapq.heappush(events, (request.arrival_ns, _EVENT_ARRIVAL, seq, request))
            seq += 1

        queues: Dict[str, Deque[Request]] = {}
        ema: Dict[str, float] = {}
        last_arrival: Dict[str, float] = {}
        pending_deadline: Dict[str, float] = {}
        forced: Dict[str, bool] = {}

        latencies: List[float] = []
        waits: List[float] = []
        #: per-model latencies, tracked only for models with an SLO target
        #: (the SLO blocks are the sole consumer)
        by_model: Dict[str, List[float]] = {}
        batch_histogram: Dict[int, int] = {}
        served_histogram: Dict[int, int] = {}
        padded_batches = 0
        batches = 0
        last_completion = 0.0
        models_seen: Dict[str, None] = {}
        first_arrival = min(r.arrival_ns for r in initial)
        last_arrival_ns = first_arrival

        # time-weighted queue depth accounting
        depth = 0
        depth_last_t = first_arrival
        depth_integral = 0.0
        depth_max = 0

        def change_depth(now: float, delta: int) -> None:
            nonlocal depth, depth_last_t, depth_integral, depth_max
            depth_integral += depth * (now - depth_last_t)
            depth_last_t = now
            depth += delta
            depth_max = max(depth_max, depth)

        def try_dispatch(now: float) -> None:
            nonlocal seq, batches, padded_batches, last_completion
            while True:
                idle = self.fleet.idle_workers(now)
                if not idle:
                    return
                candidates = self.policy.order_queues(queues)
                progressed = False
                for model in candidates:
                    queue = queues[model]
                    if forced.get(model):
                        batch = self.batcher.dispatch_size(len(queue))
                    else:
                        # cost each candidate batch size on the chip the
                        # policy would actually dispatch it to — on a
                        # heterogeneous fleet the next larger batch may
                        # route to a different chip class than the current
                        # one, and with switch cost on a cold chip's
                        # switch charge must be part of the comparison
                        def cost_of(candidate_batch: int) -> float:
                            worker = self.policy.choose_worker(
                                idle, model, candidate_batch,
                                self.plan_cache, now, self.switch_cost,
                            )
                            plan = self.plan_cache.get(
                                model, worker.chip_name, candidate_batch
                            )
                            return service_latency_ns(plan, worker,
                                                      self.switch_cost)

                        batch, deadline = self.batcher.choose(
                            queue_len=len(queue),
                            now_ns=now,
                            oldest_arrival_ns=queue[0].arrival_ns,
                            ema_interarrival_ns=ema.get(model, math.inf),
                            latency_of=cost_of,
                            more_arrivals=remaining.get(model, 0) > 0,
                        )
                        if batch == 0:
                            if pending_deadline.get(model) != deadline:
                                pending_deadline[model] = deadline
                                heapq.heappush(
                                    events, (deadline, _EVENT_DEADLINE, seq, model)
                                )
                                seq += 1
                            continue
                    worker = self.policy.choose_worker(
                        idle, model, batch, self.plan_cache, now, self.switch_cost
                    )
                    served = min(batch, len(queue))
                    batch_requests = [queue.popleft() for _ in range(served)]
                    forced.pop(model, None)
                    pending_deadline.pop(model, None)
                    plan = self.plan_cache.get(model, worker.chip_name, batch)
                    service_ns = service_latency_ns(plan, worker, self.switch_cost)
                    if is_plan_switch(plan, worker, self.switch_cost):
                        worker.plan_switches += 1
                        worker.switch_ns += plan.weight_replace_ns
                    worker.loaded_plan = plan.key
                    completion = now + service_ns
                    worker.busy_until_ns = completion
                    worker.busy_ns += service_ns
                    worker.batches_served += 1
                    worker.requests_served += served
                    worker.energy_pj += plan.energy_pj
                    heapq.heappush(events, (completion, _EVENT_FREE, seq, worker.index))
                    seq += 1
                    for request in batch_requests:
                        latencies.append(completion - request.arrival_ns)
                        waits.append(now - request.arrival_ns)
                        if request.model in self.slos:
                            by_model.setdefault(request.model, []).append(
                                completion - request.arrival_ns
                            )
                        if session is not None:
                            follow_up = session.on_complete(request, completion)
                            if follow_up is not None:
                                heapq.heappush(
                                    events,
                                    (follow_up.arrival_ns, _EVENT_ARRIVAL,
                                     seq, follow_up),
                                )
                                seq += 1
                    self.policy.note_dispatch(model, served)
                    change_depth(now, -served)
                    batches += 1
                    batch_histogram[batch] = batch_histogram.get(batch, 0) + 1
                    served_histogram[served] = served_histogram.get(served, 0) + 1
                    if served < batch:
                        padded_batches += 1
                    last_completion = max(last_completion, completion)
                    progressed = True
                    break
                if not progressed:
                    return

        # --- event loop -------------------------------------------------
        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _EVENT_ARRIVAL:
                request = payload
                model = request.model
                previous = last_arrival.get(model)
                if previous is not None:
                    gap = request.arrival_ns - previous
                    # simultaneous arrivals (duplicate trace timestamps,
                    # batch completions under closed-loop traffic) carry no
                    # rate information: a zero gap would drag the EMA
                    # toward 0 and make the batcher hold to the deadline
                    if gap > 0:
                        current = ema.get(model)
                        ema[model] = (
                            gap if current is None
                            else _EMA_ALPHA * gap + (1.0 - _EMA_ALPHA) * current
                        )
                last_arrival[model] = request.arrival_ns
                last_arrival_ns = max(last_arrival_ns, request.arrival_ns)
                models_seen.setdefault(model)
                queues.setdefault(model, deque()).append(request)
                remaining[model] -= 1
                change_depth(now, +1)
            elif kind == _EVENT_DEADLINE:
                model = payload
                if pending_deadline.get(model) == now and queues.get(model):
                    forced[model] = True
                    pending_deadline.pop(model, None)
            # _EVENT_FREE carries no state change: the worker's counters were
            # updated at dispatch, and busy_until_ns now equals `now`
            try_dispatch(now)

        # --- report -----------------------------------------------------
        # the clock starts at the first arrival, not t=0: replayed traces may
        # carry large epoch-style timestamps, and the idle prefix before the
        # first request exists must not dilute throughput/utilisation (the
        # queue-depth integral already starts there)
        makespan_ns = max(last_completion, last_arrival_ns) - first_arrival
        span_s = makespan_ns * 1e-9
        offered_span_s = (last_arrival_ns - first_arrival) * 1e-9
        latencies.sort()
        waits.sort()
        total_energy_pj = sum(w.energy_pj for w in self.fleet.workers)
        completed = len(latencies)
        per_chip = []
        for worker in self.fleet.workers:
            row: Dict[str, object] = {
                "chip": worker.label,
                "class": worker.chip_name,
                "batches": worker.batches_served,
                "requests": worker.requests_served,
                "busy_ms": worker.busy_ns * 1e-6,
                "utilisation": worker.utilisation(makespan_ns),
                "energy_mj": worker.energy_pj * 1e-9,
            }
            if self.switch_cost:
                row["plan_switches"] = worker.plan_switches
                row["switch_ms"] = worker.switch_ns * 1e-6
            per_chip.append(row)
        slo_blocks: Dict[str, Dict[str, float]] = {}
        for model, target_ms in sorted(self.slos.items()):
            model_latencies = sorted(by_model.get(model, []))
            count = len(model_latencies)
            target_ns = target_ms * 1e6
            attained = sum(1 for v in model_latencies if v <= target_ns)
            slo_blocks[model] = {
                "target_ms": target_ms,
                "completed": count,
                "p50_ms": _percentile(model_latencies, 50) * 1e-6,
                "p95_ms": _percentile(model_latencies, 95) * 1e-6,
                "p99_ms": _percentile(model_latencies, 99) * 1e-6,
                "attainment": attained / count if count else 0.0,
            }
        traffic = dict(traffic_info or {})
        return ServingReport(
            fleet_spec=self.fleet.spec,
            policy=self.policy.name,
            traffic=traffic,
            models=tuple(sorted(models_seen)),
            optimizer=self.plan_cache.optimizer,
            mode=self.plan_cache.mode.value,
            batch_sizes=self.batcher.batch_sizes,
            max_wait_us=self.batcher.max_wait_ns * 1e-3,
            num_requests=expected,
            completed=completed,
            makespan_ms=makespan_ns * 1e-6,
            throughput_rps=completed / span_s if span_s > 0 else 0.0,
            offered_rps=expected / offered_span_s if offered_span_s > 0 else 0.0,
            latency_ms={
                "mean": (sum(latencies) / completed) * 1e-6 if completed else 0.0,
                "p50": _percentile(latencies, 50) * 1e-6,
                "p95": _percentile(latencies, 95) * 1e-6,
                "p99": _percentile(latencies, 99) * 1e-6,
                "max": latencies[-1] * 1e-6 if latencies else 0.0,
            },
            wait_ms={
                "mean": (sum(waits) / completed) * 1e-6 if completed else 0.0,
                "p95": _percentile(waits, 95) * 1e-6,
                "max": waits[-1] * 1e-6 if waits else 0.0,
            },
            queue_depth={
                "mean": depth_integral / makespan_ns if makespan_ns > 0 else 0.0,
                "max": float(depth_max),
            },
            batches=batches,
            mean_batch=completed / batches if batches else 0.0,
            batch_histogram=batch_histogram,
            served_histogram=served_histogram,
            padded_batches=padded_batches,
            per_chip=per_chip,
            total_energy_mj=total_energy_pj * 1e-9,
            energy_per_request_mj=(total_energy_pj * 1e-9 / completed) if completed else 0.0,
            switch_cost=self.switch_cost,
            plan_switches=sum(w.plan_switches for w in self.fleet.workers),
            switch_ms=sum(w.switch_ns for w in self.fleet.workers) * 1e-6,
            slo=slo_blocks,
            plan_cache=self.plan_cache.stats.as_dict(),
        )
