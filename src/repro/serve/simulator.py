"""Discrete-event serving simulator: request streams against a chip fleet.

The simulator replays a seed-deterministic request stream
(:mod:`repro.serve.traffic`) against a :class:`~repro.serve.fleet.Fleet` of
chips running compiled partition plans (:mod:`repro.serve.plans`), with a
:class:`~repro.serve.scheduler.SchedulingPolicy` choosing chips and a
:class:`~repro.serve.scheduler.DynamicBatcher` choosing batch sizes.  It
produces a :class:`ServingReport` with the quantities the paper's
single-inference metrics are a proxy for: sustained throughput, p50/p95/p99
request latency, queue depths, per-chip utilisation and energy.

Six event kinds drive the loop, in a deterministic total order
``(time, kind, tie, sequence)`` — the tie component is the chip index for
chip-bound events (completions, faults), so same-instant events resolve by
chip id instead of heap insertion order:

* **chip-free** — a chip finished its batch; its requests complete (and,
  under closed-loop traffic, their clients issue follow-up requests —
  arrivals are injected into the live event heap, they need not be known
  up front).
* **fault** — an injected fault event fires (:mod:`repro.serve.faults`):
  a chip fails (its in-flight batch is killed and the riders retried or
  lost), recovers, starts or stops straggling, or drops to degraded DRAM
  timings.  Ordered after chip-free at the same instant, so a batch
  completing exactly when its chip dies still completes.
* **arrival** — a request joins its model's FIFO queue (and updates the
  per-model interarrival EMA the batcher's wait estimates use; zero gaps
  from simultaneous arrivals are skipped — they carry no rate information
  and would collapse the EMA toward zero).  With admission control
  enabled, an arrival that finds the fleet over budget is shed instead.
  Retries re-enter here too, flagged by ``Request.attempt``.
* **timeout** — a queued request exhausted its wait budget; it abandons
  the queue and retries (deterministic exponential backoff) or counts as
  timed out.
* **batch-deadline** — a held queue's batching-delay budget expired; the
  next dispatch for that model is forced.
* **control tick** — the self-healing control plane
  (:mod:`repro.serve.control`) wakes on its fixed interval, last at any
  instant so it observes the settled state: it quarantines chips whose
  expected completions stalled or whose service-ratio EMA marks them as
  stragglers, hedges queued requests stuck past the latency-window
  percentile budget (first copy to complete wins; the loser is cancelled
  or goes uncounted), grows/shrinks the fleet against windowed SLO
  attainment and utilisation (new chips arrive cold and pay the
  plan-switch weight-replacement cost on first dispatch), and re-pins
  resident plans across the idle survivors after any topology change.
  The tick chain re-arms itself only while there is something left to
  control, so it never keeps a finished run alive.

After every event the simulator dispatches greedily: while an idle chip and
a non-empty queue exist (queues ordered by the policy — FIFO across models
by default, deficit round-robin under the ``fair`` policy), the batcher
picks a size, the policy picks a chip, and the batch occupies the chip for
the plan's service latency.  With plan-switch cost modelled
(:func:`~repro.serve.fleet.switch_cost_enabled`), the service latency
depends on what the chip's crossbars already hold: a plan switch pays the
incoming plan's weight-replacement term on top of the compiled latency
(and is counted per chip), a warm re-dispatch pays the compiled latency
unchanged.

Fault-free runs keep the exact pre-fault accounting path (completion
quantities recorded at dispatch, chip-free events carrying no state), so
their reports are bit-identical to the pre-fault simulator — pinned in
``tests/test_serve.py``.  With faults injected or any
:class:`~repro.serve.faults.FaultTolerance` knob active, completions are
instead finalised at the chip-free event (a chip may die first), requests
lost to failures/timeouts re-enter as retries, and the report grows a
``faults`` block (failures, retries, timeouts, shed/lost counts, lost
work, availability) plus per-chip downtime columns.  A run with an
active control plane always takes the fault-aware path (hedging and
quarantine need completions finalised at the chip-free event) and adds a
``control`` block to the report.  Nothing consumes
randomness at simulation time — chaos fault schedules are pre-drawn from
their own seed — so a fixed-seed scenario, faulty or not, replays to a
bit-identical report (plan-cache statistics are reported, but deliberately
excluded from the deterministic core, see ``determinism_dict``).
"""

from __future__ import annotations

import heapq
import math
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.hardware.config import get_chip_config
from repro.serve.control import COLD_PLAN, ControlConfig, Controller, place_plans
from repro.serve.faults import (
    ACTION_DRAM,
    ACTION_FAIL,
    ACTION_RECOVER,
    ACTION_STRAGGLE,
    FaultEvent,
    FaultTolerance,
    faults_enabled,
    materialize,
    parse_inject,
    validate_fault_targets,
)
from repro.serve.fleet import (
    ChipWorker,
    Fleet,
    is_plan_switch,
    plan_for,
    service_latency_ns,
    switch_cost_enabled,
)
from repro.serve.plans import CompiledPlan, PlanCache
from repro.serve.scheduler import DynamicBatcher, SchedulingPolicy, make_policy
from repro.serve.telemetry import (
    FLUSH_EVERY_BOUNDARIES,
    TelemetryConfig,
    TelemetrySession,
    telemetry_enabled,
)
from repro.serve.traffic import ClosedLoopTraffic, Request, retry_request
from repro.sim.metrics import nearest_rank_percentile

#: deterministic event ordering at one instant: completions free chips
#: first, then faults strike, then arrivals/retries queue, then timeouts
#: abandon, then batch deadlines force dispatches, then the control plane
#: ticks (so a tick always observes the settled state of its instant).
#: Telemetry boundary samples need no heap events at all — they are taken
#: lazily when the loop pops the first event *past* a window boundary,
#: reading exactly the state a dedicated tick at that boundary would see.
_EVENT_FREE, _EVENT_FAULT, _EVENT_ARRIVAL, _EVENT_TIMEOUT, _EVENT_DEADLINE = (
    0, 1, 2, 3, 4,
)
_EVENT_CONTROL = 5

#: smoothing factor of the per-model interarrival EMA
_EMA_ALPHA = 0.2

#: nearest-rank percentile, shared with the control plane and the telemetry
#: sketches (kept under the historical private name — tests import it here)
_percentile = nearest_rank_percentile


@dataclass
class _Inflight:
    """One dispatched batch that has not completed yet (fault-aware runs).

    The fault-free path never creates these — its completion accounting
    happens at dispatch, exactly like the pre-fault simulator.  Fault-aware
    runs finalise at the chip-free event instead, because the chip may die
    first: the record carries everything finalisation (or the failure
    handler) needs.
    """

    epoch: int
    start_ns: float
    completion_ns: float
    service_ns: float
    plan: CompiledPlan
    batch: int
    served: int
    requests: List[Request]
    model: str
    #: nominal healthy-chip service time — compiled latency at nominal DRAM
    #: plus any switch weight-replacement — the controller's service-ratio
    #: baseline (0 when no controller runs)
    nominal_ns: float = 0.0
    #: speculative hedge duplicate: its lone rider is also queued or
    #: in flight elsewhere, and only the first copy to complete is counted
    hedge: bool = False


class CommandQueue:
    """Thread-safe FIFO of mid-run commands for a live simulation.

    The observatory's control endpoints ``put`` command dictionaries from
    the service thread; the simulator ``drain``s the queue at its next
    event pop, so a command lands at a well-defined point in the
    deterministic event order (whatever instant the simulation had
    reached).  The *arrival point* of a command depends on wall-clock
    timing, so a commanded run is reproducible only given the same
    command schedule — the report's ``commands`` block records exactly
    when each one landed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: List[Dict[str, object]] = []

    def put(self, command: Dict[str, object]) -> None:
        """Enqueue one command dict (see ``ServingSimulator.run``)."""
        with self._lock:
            self._items.append(dict(command))

    def drain(self) -> List[Dict[str, object]]:
        """Pop every queued command in FIFO order (empty list if none)."""
        if not self._items:  # racy peek: a late command drains next pop
            return []
        with self._lock:
            items = self._items
            self._items = []
        return items


@dataclass
class ServingReport:
    """Outcome of one serving run (all quantities deterministic per seed).

    Two histograms describe the batching mix: ``batch_histogram`` counts
    the *nominal* compiled batch size of every dispatch (the plan that
    occupied the chip — padded slots included, which is what latency and
    energy are charged for), while ``served_histogram`` counts the
    requests each dispatch actually served.  They differ exactly on padded
    batches, and ``mean_batch`` is served requests per dispatch
    (``completed / batches``) — consistent with ``served_histogram``.

    Fault-aware runs (``fault_tolerance``) additionally account every
    request's fate — ``completed + shed + timeouts + lost`` covers the
    offered stream unless the run ended with requests still queued — plus
    lost work, retry counts and fleet availability (chip-uptime fraction
    over the makespan).
    """

    fleet_spec: str
    policy: str
    traffic: Dict[str, object]
    models: Tuple[str, ...]
    optimizer: str
    mode: str
    batch_sizes: Tuple[int, ...]
    max_wait_us: float
    num_requests: int
    completed: int
    makespan_ms: float
    throughput_rps: float
    offered_rps: float
    latency_ms: Dict[str, float]
    wait_ms: Dict[str, float]
    queue_depth: Dict[str, float]
    batches: int
    mean_batch: float
    batch_histogram: Dict[int, int]
    served_histogram: Dict[int, int]
    padded_batches: int
    per_chip: List[Dict[str, object]]
    total_energy_mj: float
    energy_per_request_mj: float
    #: whether plan-switch weight-replacement cost was modelled
    switch_cost: bool = False
    #: total plan switches across the fleet (0 when switch cost is off)
    plan_switches: int = 0
    #: total weight-replacement time charged to switches (ms)
    switch_ms: float = 0.0
    #: per-model SLO blocks (only for models given a target): target,
    #: p50/p95/p99 latency and the attained fraction
    slo: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: whether faults were injected or fault-tolerance machinery was active
    fault_tolerance: bool = False
    #: chip failures applied
    failures: int = 0
    #: retry attempts injected (after chip failures and timeouts)
    retries: int = 0
    #: requests abandoned by timeout with no attempts left
    timeouts: int = 0
    #: arrivals rejected by admission control
    shed: int = 0
    #: requests lost to chip failures with no attempts left
    lost: int = 0
    #: chip time wasted on batches killed mid-flight (ms)
    lost_work_ms: float = 0.0
    #: dispatches that bypassed batching because a model was behind SLO
    degraded_dispatches: int = 0
    #: chip-uptime fraction over the makespan (1.0 = no downtime)
    availability: float = 1.0
    #: control-plane block (detections vs injected truth, hedge outcomes,
    #: scale events, re-placements) — empty when no controller ran
    control: Dict[str, object] = field(default_factory=dict)
    #: mid-run commands applied (or rejected) by a live observatory run,
    #: in application order with the simulation instant each one landed
    #: at — empty for ordinary runs.  Command arrival instants depend on
    #: wall-clock timing, so this block is excluded from the
    #: determinism core.
    commands: List[Dict[str, object]] = field(default_factory=list)
    #: per-window metrics timeline rows (empty unless a timeline interval
    #: was configured) — deterministic per seed
    timeline: List[Dict[str, object]] = field(default_factory=list)
    #: telemetry hub snapshot (counters/gauges/histograms + config echo)
    #: — empty when no telemetry ran
    telemetry: Dict[str, object] = field(default_factory=dict)
    plan_cache: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def determinism_dict(self) -> Dict[str, object]:
        """The seed-deterministic core of the report.

        Everything except the plan-cache counters and the telemetry hub
        snapshot (whose gauges embed those same counters), which
        legitimately differ between cold-cache and warm-cache runs of the
        same seed; the fixed-seed replay tests compare exactly this
        dictionary.  The ``timeline`` block *is* deterministic and stays.
        """
        data = self.as_dict()
        data.pop("plan_cache", None)
        data.pop("telemetry", None)
        # command arrival points depend on wall-clock service timing
        data.pop("commands", None)
        return data

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-compatible dictionary (for serialization).

        The ``switch`` block appears only when plan-switch cost was
        modelled, the ``slo`` block only when SLO targets were set, the
        ``faults`` block only when faults were injected or fault-tolerance
        machinery was active, and the ``control`` block only when the
        self-healing control plane ran — so a run with every feature off
        serializes exactly like the pre-fault model did.
        """
        data: Dict[str, object] = {
            "fleet": self.fleet_spec,
            "policy": self.policy,
            "traffic": dict(self.traffic),
            "models": list(self.models),
            "optimizer": self.optimizer,
            "mode": self.mode,
            "batch_sizes": list(self.batch_sizes),
            "max_wait_us": self.max_wait_us,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "makespan_ms": self.makespan_ms,
            "throughput_rps": self.throughput_rps,
            "offered_rps": self.offered_rps,
            "latency_ms": dict(self.latency_ms),
            "wait_ms": dict(self.wait_ms),
            "queue_depth": dict(self.queue_depth),
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "batch_histogram": {str(k): v for k, v in sorted(self.batch_histogram.items())},
            "served_histogram": {str(k): v for k, v in sorted(self.served_histogram.items())},
            "padded_batches": self.padded_batches,
            "per_chip": [dict(row) for row in self.per_chip],
            "total_energy_mj": self.total_energy_mj,
            "energy_per_request_mj": self.energy_per_request_mj,
        }
        if self.switch_cost:
            data["switch"] = {
                "plan_switches": self.plan_switches,
                "switch_ms": self.switch_ms,
            }
        if self.slo:
            data["slo"] = {model: dict(block)
                           for model, block in sorted(self.slo.items())}
        if self.fault_tolerance:
            data["faults"] = {
                "failures": self.failures,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "shed": self.shed,
                "lost": self.lost,
                "lost_work_ms": self.lost_work_ms,
                "degraded_dispatches": self.degraded_dispatches,
                "availability": self.availability,
            }
        if self.control:
            data["control"] = dict(self.control)
        if self.commands:
            data["commands"] = [dict(entry) for entry in self.commands]
        if self.timeline:
            data["timeline"] = [dict(row) for row in self.timeline]
        if self.telemetry:
            data["telemetry"] = dict(self.telemetry)
        data["plan_cache"] = dict(self.plan_cache)
        return data

    def summary_row(self) -> Dict[str, object]:
        """One flat headline row (for tables and benchmarks)."""
        return {
            "fleet": self.fleet_spec,
            "policy": self.policy,
            "traffic": str(self.traffic.get("traffic", "")),
            "requests": self.completed,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency_ms.get("p50", 0.0),
            "p95_ms": self.latency_ms.get("p95", 0.0),
            "p99_ms": self.latency_ms.get("p99", 0.0),
            "mean_batch": self.mean_batch,
            "plan_switches": self.plan_switches,
            "utilisation": (
                sum(float(row["utilisation"]) for row in self.per_chip) / len(self.per_chip)
                if self.per_chip else 0.0
            ),
            "energy_per_request_mj": self.energy_per_request_mj,
        }


class ServingSimulator:
    """Replays a request stream against a fleet of chips.

    ``switch_cost`` toggles plan-switch weight-replacement modelling
    (``None`` follows the ``REPRO_SERVE_SWITCH_COST`` environment default,
    which is on).  ``slos`` maps model names to latency targets in
    milliseconds; models with a target get a per-model percentile and
    attainment block in the report.

    ``faults`` is a sequence of :class:`~repro.serve.faults.FaultEvent`
    records to inject (materialised at construction, so an out-of-range
    chip index fails fast; dropped wholesale when ``REPRO_SERVE_FAULTS=0``),
    and ``fault_tolerance`` configures the survival machinery — timeouts,
    capped retries with deterministic backoff, admission control and
    SLO-driven degradation.  ``control`` configures the self-healing
    control plane (:class:`~repro.serve.control.ControlConfig`):
    quarantine-based failure detection, hedged requests, SLO-driven
    autoscaling and plan re-placement, all driven from a fixed control
    tick.  With none of the three in play the simulator runs the exact
    pre-fault code path, bit-identically.

    ``telemetry`` configures the passive observability layer
    (:class:`~repro.serve.telemetry.TelemetryConfig`): a per-window
    metrics timeline, streaming percentile sketches and every-K-th
    request lifecycle tracing.  Telemetry is a **pure observer** — it
    reads simulation state and consumes no randomness, so a telemetry-on
    run replays the telemetry-off event order exactly and its report is
    bit-identical minus the new ``timeline``/``telemetry`` blocks
    (dropped wholesale when ``REPRO_SERVE_TELEMETRY=0``).  The last run's
    :class:`~repro.serve.telemetry.TelemetrySession` is kept on
    ``telemetry_session`` so callers can export the Chrome trace.
    """

    def __init__(
        self,
        fleet: Fleet,
        plan_cache: PlanCache,
        policy: Union[str, SchedulingPolicy] = "latency",
        batcher: Optional[DynamicBatcher] = None,
        batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
        max_wait_us: float = 0.0,
        switch_cost: Optional[bool] = None,
        slos: Optional[Dict[str, float]] = None,
        faults: Optional[Sequence[FaultEvent]] = None,
        fault_tolerance: Optional[FaultTolerance] = None,
        control: Optional[ControlConfig] = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.fleet = fleet
        self.plan_cache = plan_cache
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.batcher = (
            batcher if batcher is not None
            else DynamicBatcher(batch_sizes=batch_sizes, max_wait_us=max_wait_us)
        )
        self.switch_cost = (
            switch_cost_enabled() if switch_cost is None else bool(switch_cost)
        )
        self.slos: Dict[str, float] = dict(slos or {})
        for model, target_ms in self.slos.items():
            if target_ms <= 0:
                raise ValueError(
                    f"SLO target must be positive, got {model}={target_ms}"
                )
        self.fault_tolerance = (
            fault_tolerance if fault_tolerance is not None else FaultTolerance()
        )
        self.control = control if control is not None else ControlConfig()
        self.telemetry = (
            telemetry if telemetry is not None and telemetry_enabled()
            else TelemetryConfig()
        )
        #: the last run's telemetry session (trace export reads it)
        self.telemetry_session: Optional[TelemetrySession] = None
        #: live-stream sink ``sink(kind, payload)`` — the observatory
        #: attaches one before ``run`` so completed timeline windows,
        #: fault events and command receipts stream out mid-run.  ``None``
        #: (the default) keeps the pure batch path: telemetry renders the
        #: whole timeline once at the end of the run.
        self.stream_sink = None
        if self.control.active and self.control.scale_chip is not None:
            get_chip_config(self.control.scale_chip)  # fail fast on bad names
        #: fleet size at construction — chips the autoscaler appended are
        #: dropped at the start of every run, so a simulator re-runs cleanly
        self._base_workers = len(fleet.workers)
        self.fault_events: Tuple[FaultEvent, ...] = tuple(faults or ())
        self._fault_schedule: List[Tuple[float, str, int, float]] = (
            materialize(self.fault_events, len(fleet.workers))
            if self.fault_events and faults_enabled() else []
        )

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Union[Sequence[Request], ClosedLoopTraffic],
        traffic_info: Optional[Dict[str, object]] = None,
        commands: Optional[CommandQueue] = None,
    ) -> ServingReport:
        """Simulate serving the request stream; returns the full report.

        ``requests`` is either a pregenerated list (open-loop traffic,
        trace replay) or a :class:`~repro.serve.traffic.ClosedLoopTraffic`
        generator, whose clients issue each follow-up request only when
        the previous one completes — those arrivals are injected into the
        event heap mid-run.

        ``commands`` is an optional :class:`CommandQueue` another thread
        feeds while the run is live (the observatory's control
        endpoints).  Supported ops: ``inject_fault`` (``spec`` in
        ``parse_inject`` syntax, scheduled relative to the drain
        instant), ``set_policy`` (``policy`` name), and
        ``autoscale_bounds`` (``min_chips``/``max_chips``, requires an
        active control plane).  Commands drain at event pops, so each
        lands at a well-defined simulation instant recorded in the
        report's ``commands`` block; configuration mutations are rolled
        back after the run so the simulator instance stays reusable.
        """
        session = None
        if isinstance(requests, ClosedLoopTraffic):
            if traffic_info is None:
                traffic_info = requests.describe()
            session = requests.session()
            initial = session.initial()
            expected = session.num_requests
            remaining: Dict[str, int] = session.model_counts()
        else:
            initial = sorted(requests, key=lambda r: (r.arrival_ns, r.request_id))
            expected = len(initial)
            remaining = {}
            for request in initial:
                remaining[request.model] = remaining.get(request.model, 0) + 1
        if not initial:
            raise ValueError("cannot simulate an empty request stream")
        del self.fleet.workers[self._base_workers:]  # drop autoscaled chips
        self.fleet.reset()
        self.policy.reset()
        ft = self.fault_tolerance
        use_control = self.control.active
        ctrl = Controller(self.control) if use_control else None
        #: the fault-aware accounting path: completions finalise at the
        #: chip-free event instead of at dispatch.  Off on fault-free runs,
        #: whose accounting stays bit-identical to the pre-fault simulator;
        #: always on under the control plane, whose hedging and quarantine
        #: need in-flight records.
        use_ft = bool(self._fault_schedule) or ft.active or use_control
        #: the passive telemetry session (None when every knob is off, so
        #: the hot path pays a single `is not None` check per hook site)
        tele = (
            TelemetrySession(self.telemetry, slo_models=sorted(self.slos))
            if self.telemetry.active else None
        )
        self.telemetry_session = tele
        if tele is not None and self.stream_sink is not None:
            tele.sink = self.stream_sink
        # mid-run commands may swap the policy or the control config;
        # roll both back after the run so the instance stays reusable
        base_policy = self.policy
        base_control = self.control
        applied_commands: List[Dict[str, object]] = []
        #: constant-memory substitutes for the latency/wait sample lists
        #: (only under --streaming-percentiles; None keeps the exact path)
        stream = tele.stream if tele is not None else None

        # --- event heap: (time, kind, tie, seq, payload) ----------------
        # tie is the chip index for chip-bound events (free/fault), so
        # same-instant chip events resolve by chip id, never by heap
        # insertion order; seq keeps arrival/deadline FIFO within a tie
        events: List[Tuple[float, int, int, int, object]] = []
        seq = 0
        for request in initial:
            heapq.heappush(
                events, (request.arrival_ns, _EVENT_ARRIVAL, 0, seq, request)
            )
            seq += 1
        first_arrival = min(r.arrival_ns for r in initial)
        for at_us, action, chip, factor in self._fault_schedule:
            heapq.heappush(
                events,
                (first_arrival + at_us * 1e3, _EVENT_FAULT, chip, seq,
                 (action, chip, factor)),
            )
            seq += 1
        interval_ns = self.control.interval_us * 1e3
        if use_control:
            heapq.heappush(
                events,
                (first_arrival + interval_ns, _EVENT_CONTROL, 0, seq, None),
            )
            seq += 1
        tele_interval_ns = (
            self.telemetry.timeline_interval_us * 1e3 if tele is not None
            else 0.0
        )
        #: index of the *next* timeline boundary — boundary k closes window
        #: k - 1 at first_arrival + k * interval (multiplied out, never
        #: accumulated, so boundary times carry no float drift).  Boundaries
        #: are sampled lazily at event pops, never queued as heap events —
        #: ``inf`` keeps the per-pop check to one always-false comparison
        #: when the timeline is off.
        tele_k = 1
        tele_next_ns = math.inf
        tele_sample = None
        tele_flush = None
        tele_flush_k = 0
        if tele is not None:
            tele.start(first_arrival)
            if tele_interval_ns > 0 and tele.timeline is not None:
                tele_next_ns = first_arrival + tele_interval_ns
                # bound once: the boundary sampler feeds the accumulator
                # directly rather than through the session wrapper
                tele_sample = tele.timeline.sample
                if tele.sink is not None:
                    # a live observatory is watching: stream every window
                    # proven final right after its boundary closes
                    tele_flush = tele.flush_stream

        queues: Dict[str, Deque[Request]] = {}
        ema: Dict[str, float] = {}
        last_arrival: Dict[str, float] = {}
        pending_deadline: Dict[str, float] = {}
        forced: Dict[str, bool] = {}

        latencies: List[float] = []
        waits: List[float] = []
        #: per-model latencies, tracked only for models with an SLO target
        #: (the SLO blocks are the sole consumer)
        by_model: Dict[str, List[float]] = {}
        batch_histogram: Dict[int, int] = {}
        served_histogram: Dict[int, int] = {}
        padded_batches = 0
        batches = 0
        last_completion = 0.0
        models_seen: Dict[str, None] = {}
        last_arrival_ns = first_arrival

        # fault-tolerance state (all of it inert on fault-free runs)
        inflight: Dict[int, _Inflight] = {}
        queued_keys: Set[Tuple[int, int]] = set()
        #: first-arrival time per request id (end-to-end latency baseline
        #: across retries)
        origins: Dict[int, float] = {}
        #: running [attained, completed] per SLO model (degradation trigger)
        slo_running: Dict[str, List[int]] = {}
        failures = retries = timeouts_n = shed = lost = degraded = 0
        smallest_batch = self.batcher.batch_sizes[0]

        ctl_snapshot_key: Optional[Tuple[int, ...]] = None
        ctl_snapshot: Dict[str, object] = {}

        def control_counters() -> Dict[str, object]:
            """Cumulative control actuator counters (timeline deltas these).

            Ticks where no counter moved get the *same dict object* back —
            the timeline's delta pass short-circuits on identity, and
            control actions are rare relative to tick frequency.
            """
            nonlocal ctl_snapshot_key, ctl_snapshot
            current = (ctrl.quarantines, ctrl.readmissions, ctrl.hedges,
                       ctrl.scale_ups, ctrl.scale_downs, ctrl.replacements)
            if current != ctl_snapshot_key:
                ctl_snapshot_key = current
                ctl_snapshot = {
                    "quarantines": current[0],
                    "readmissions": current[1],
                    "hedges": current[2],
                    "scale_ups": current[3],
                    "scale_downs": current[4],
                    "replacements": current[5],
                }
            return ctl_snapshot

        if tele is not None:
            # existing stat surfaces register as lazy gauge sources — the
            # hub re-reads them at every snapshot instead of copying state
            tele.hub.register_source("plan_cache",
                                     self.plan_cache.stats.as_dict)
            tele.hub.register_source("fleet", lambda: {
                "chips": len(self.fleet.workers),
                "up": sum(1 for w in self.fleet.workers if w.up),
                "busy_ms": sum(w.busy_ns for w in self.fleet.workers) * 1e-6,
                "energy_mj": sum(
                    w.energy_pj for w in self.fleet.workers) * 1e-9,
                "plan_switches": sum(
                    w.plan_switches for w in self.fleet.workers),
            })
            if use_ft:
                tele.hub.register_source("faults", lambda: {
                    "failures": failures,
                    "retries": retries,
                    "timeouts": timeouts_n,
                    "shed": shed,
                    "lost": lost,
                })
            if ctrl is not None:
                tele.hub.register_source("control", control_counters)

        # hedging state (all of it empty unless the controller hedges):
        # request id -> chip its hedge copy is flying on; ids with a live
        # hedge; ids whose first copy completed (the late copy goes
        # uncounted); ids whose original died while the hedge flew
        hedge_outstanding: Dict[int, int] = {}
        hedged: Set[int] = set()
        winners: Set[int] = set()
        orphaned: Set[int] = set()

        # time-weighted queue depth accounting
        depth = 0
        depth_last_t = first_arrival
        depth_integral = 0.0
        depth_max = 0

        def change_depth(now: float, delta: int) -> None:
            nonlocal depth, depth_last_t, depth_integral, depth_max
            depth_integral += depth * (now - depth_last_t)
            depth_last_t = now
            depth += delta
            depth_max = max(depth_max, depth)

        def push_arrival(request: Request) -> None:
            nonlocal seq
            heapq.heappush(
                events, (request.arrival_ns, _EVENT_ARRIVAL, 0, seq, request)
            )
            seq += 1

        def finish_without_service(request: Request, now: float) -> None:
            """A request leaves the system unserved (shed, lost, timed out).

            Closed-loop clients still get their completion callback — the
            rejected client thinks and moves on to its next request, so one
            fault cannot deadlock the client population.
            """
            if session is not None:
                follow_up = session.on_complete(request, now)
                if follow_up is not None:
                    push_arrival(follow_up)

        def try_retry(request: Request, now: float) -> bool:
            """Re-inject a failed request if attempts remain."""
            nonlocal retries
            if request.attempt >= ft.max_retries:
                return False
            retries += 1
            if tele is not None:
                tele.retry(now, request)
            # a retry entering its final attempt may jump the queue
            # (``retry_priority``): losing it again loses it for good
            priority = (
                1 if ft.retry_priority
                and request.attempt + 1 >= ft.max_retries else None
            )
            push_arrival(retry_request(
                request, now + ft.backoff_ns(request.attempt),
                priority=priority,
            ))
            return True

        def should_shed(request: Request, now: float) -> bool:
            """Admission-control decision for a first-attempt arrival."""
            if ft.shed_queue_depth > 0 and depth >= ft.shed_queue_depth:
                return True
            if ft.shed_wait_us > 0:
                up_chips = [w for w in self.fleet.workers if w.up]
                if not up_chips:
                    return True
                # crude but deterministic wait estimate: the backlog spread
                # over the live chips, each request costing the fastest
                # single-request service this model has on any live class
                fastest = min(
                    self.plan_cache.get(request.model, chip_name,
                                        smallest_batch).latency_ns
                    for chip_name in {w.chip_name for w in up_chips}
                )
                estimated_wait = depth * fastest / len(up_chips)
                if estimated_wait > ft.shed_wait_us * 1e3:
                    return True
            return False

        def finalize(worker: ChipWorker, record: _Inflight, now: float) -> None:
            """Complete a batch at its chip-free event (fault-aware path)."""
            nonlocal batches, padded_batches, last_completion
            del inflight[worker.index]
            worker.busy_ns += record.service_ns
            worker.batches_served += 1
            worker.requests_served += record.served
            worker.energy_pj += record.plan.energy_pj
            batches += 1
            batch_histogram[record.batch] = batch_histogram.get(record.batch, 0) + 1
            served_histogram[record.served] = (
                served_histogram.get(record.served, 0) + 1
            )
            if record.served < record.batch:
                padded_batches += 1
            if ctrl is not None and record.nominal_ns > 0:
                ctrl.note_completion(worker.index,
                                     record.service_ns / record.nominal_ns)
            for request in record.requests:
                rid = request.request_id
                if ctrl is not None:
                    if rid in winners:
                        # the other copy of this hedged request completed
                        # first and was counted; this late copy is not a
                        # second completion (and a losing hedge copy is
                        # wasted speculative work)
                        winners.discard(rid)
                        hedge_outstanding.pop(rid, None)
                        if record.hedge:
                            ctrl.hedges_wasted += 1
                        if tele is not None:
                            tele.end_service(now, request, worker, "uncounted")
                        continue
                    if rid in hedged:
                        # first copy of a hedged request to complete wins
                        hedged.discard(rid)
                        if record.hedge:
                            ctrl.hedges_won += 1
                            key = (rid, request.attempt)
                            if rid in orphaned:
                                # the original died with its chip while the
                                # hedge flew; nothing left to cancel
                                orphaned.discard(rid)
                                hedge_outstanding.pop(rid, None)
                            elif key in queued_keys:
                                # the original never dispatched: cancel it
                                queued_keys.discard(key)
                                queues[record.model].remove(request)
                                change_depth(now, -1)
                                hedge_outstanding.pop(rid, None)
                                ctrl.hedges_cancelled += 1
                                if tele is not None:
                                    tele.queue_exit(now, request, "cancelled")
                            else:
                                # the original is executing: when it
                                # completes it goes uncounted
                                winners.add(rid)
                        else:
                            # the original beat its hedge; the hedge
                            # finishes (or dies) uncounted
                            winners.add(rid)
                total = now - origins.get(request.request_id, request.arrival_ns)
                wait_ns = record.start_ns - request.arrival_ns
                slo_ok: Optional[bool] = None
                if request.model in self.slos:
                    slo_ok = total <= self.slos[request.model] * 1e6
                    running = slo_running.setdefault(request.model, [0, 0])
                    running[1] += 1
                    if slo_ok:
                        running[0] += 1
                if stream is None:
                    latencies.append(total)
                    waits.append(wait_ns)
                    if request.model in self.slos:
                        by_model.setdefault(request.model, []).append(total)
                else:
                    stream.note(total, wait_ns, request.model, slo_ok)
                if tele is not None:
                    tele.completion(now, request, total, wait_ns, slo_ok,
                                    worker)
                if ctrl is not None:
                    ctrl.note_request(total, slo_ok)
                if session is not None:
                    follow_up = session.on_complete(request, now)
                    if follow_up is not None:
                        push_arrival(follow_up)
            last_completion = max(last_completion, now)

        def behind_slo(model: str) -> bool:
            """Whether graceful degradation should kick in for ``model``."""
            if ft.degrade_below <= 0 or model not in self.slos:
                return False
            running = slo_running.get(model)
            if not running or running[1] == 0:
                return False
            return running[0] / running[1] < ft.degrade_below

        def try_dispatch(now: float) -> None:
            nonlocal seq, batches, padded_batches, last_completion, degraded
            while True:
                # a chip whose batch has not been finalised yet (its
                # chip-free event is later in this same instant) is not
                # dispatchable — inflight is empty on fault-free runs —
                # and neither is a chip the controller quarantined/retired
                idle = [w for w in self.fleet.idle_workers(now)
                        if w.index not in inflight
                        and (ctrl is None or ctrl.available(w))]
                if not idle:
                    return
                candidates = self.policy.order_queues(queues)
                progressed = False
                for model in candidates:
                    queue = queues[model]

                    # cost each candidate batch size on the chip the
                    # policy would actually dispatch it to — on a
                    # heterogeneous fleet the next larger batch may
                    # route to a different chip class than the current
                    # one, and with switch cost on a cold chip's
                    # switch charge must be part of the comparison
                    def cost_of(candidate_batch: int) -> float:
                        worker = self.policy.choose_worker(
                            idle, model, candidate_batch,
                            self.plan_cache, now, self.switch_cost,
                        )
                        plan = plan_for(self.plan_cache, worker, model,
                                        candidate_batch)
                        return service_latency_ns(plan, worker,
                                                  self.switch_cost)

                    if forced.get(model):
                        batch = self.batcher.dispatch_size(len(queue))
                    elif use_ft and behind_slo(model):
                        # graceful degradation: the model is missing its
                        # SLO — skip the batching hold and take the
                        # latency-optimal dispatch for the queue we have
                        fitting = ([b for b in self.batcher.batch_sizes
                                    if b <= len(queue)] or [smallest_batch])
                        batch = min(fitting, key=lambda b: (cost_of(b), b))
                        degraded += 1
                    else:
                        batch, deadline = self.batcher.choose(
                            queue_len=len(queue),
                            now_ns=now,
                            oldest_arrival_ns=queue[0].arrival_ns,
                            ema_interarrival_ns=ema.get(model, math.inf),
                            latency_of=cost_of,
                            more_arrivals=remaining.get(model, 0) > 0,
                        )
                        if batch == 0:
                            if pending_deadline.get(model) != deadline:
                                pending_deadline[model] = deadline
                                heapq.heappush(
                                    events,
                                    (deadline, _EVENT_DEADLINE, 0, seq, model),
                                )
                                seq += 1
                            continue
                    worker = self.policy.choose_worker(
                        idle, model, batch, self.plan_cache, now, self.switch_cost
                    )
                    served = min(batch, len(queue))
                    batch_requests = [queue.popleft() for _ in range(served)]
                    forced.pop(model, None)
                    pending_deadline.pop(model, None)
                    plan = plan_for(self.plan_cache, worker, model, batch)
                    service_ns = service_latency_ns(plan, worker, self.switch_cost)
                    switched = is_plan_switch(plan, worker, self.switch_cost)
                    if switched:
                        worker.plan_switches += 1
                        worker.switch_ns += plan.weight_replace_ns
                    worker.loaded_plan = plan.key
                    completion = now + service_ns
                    worker.busy_until_ns = completion
                    heapq.heappush(
                        events,
                        (completion, _EVENT_FREE, worker.index, seq, worker.index),
                    )
                    seq += 1
                    if tele is not None:
                        tele.dispatch(now, batch_requests, worker, model,
                                      batch, completion, switched)
                    if use_ft:
                        for request in batch_requests:
                            queued_keys.discard(
                                (request.request_id, request.attempt)
                            )
                        nominal_ns = 0.0
                        if ctrl is not None:
                            # ratio baseline: the *healthy-chip* price of
                            # this dispatch, so stragglers and degraded
                            # DRAM both show up as ratio > 1
                            nominal_plan = self.plan_cache.get(
                                model, worker.chip_name, batch)
                            nominal_ns = nominal_plan.latency_ns + (
                                nominal_plan.weight_replace_ns if switched
                                else 0.0
                            )
                        inflight[worker.index] = _Inflight(
                            epoch=worker.epoch,
                            start_ns=now,
                            completion_ns=completion,
                            service_ns=service_ns,
                            plan=plan,
                            batch=batch,
                            served=served,
                            requests=batch_requests,
                            model=model,
                            nominal_ns=nominal_ns,
                        )
                        if ctrl is not None:
                            ctrl.note_dispatch(worker.index, model, batch,
                                               completion, worker.epoch)
                    else:
                        # fault-free accounting at dispatch — the exact
                        # pre-fault path, kept bit-identical
                        worker.busy_ns += service_ns
                        worker.batches_served += 1
                        worker.requests_served += served
                        worker.energy_pj += plan.energy_pj
                        for request in batch_requests:
                            total = completion - request.arrival_ns
                            slo_ok: Optional[bool] = None
                            if request.model in self.slos:
                                slo_ok = (
                                    total <= self.slos[request.model] * 1e6
                                )
                            if stream is None:
                                latencies.append(total)
                                waits.append(now - request.arrival_ns)
                                if request.model in self.slos:
                                    by_model.setdefault(
                                        request.model, []).append(total)
                            else:
                                stream.note(total, now - request.arrival_ns,
                                            request.model, slo_ok)
                            if tele is not None:
                                tele.completion(completion, request, total,
                                                now - request.arrival_ns,
                                                slo_ok, worker)
                            if session is not None:
                                follow_up = session.on_complete(request, completion)
                                if follow_up is not None:
                                    push_arrival(follow_up)
                        batches += 1
                        batch_histogram[batch] = batch_histogram.get(batch, 0) + 1
                        served_histogram[served] = served_histogram.get(served, 0) + 1
                        if served < batch:
                            padded_batches += 1
                        last_completion = max(last_completion, completion)
                    self.policy.note_dispatch(model, served)
                    change_depth(now, -served)
                    progressed = True
                    break
                if not progressed:
                    return

        # --- control-plane actuators (only called when ctrl is not None) -
        def try_hedge(now: float, budget_ns: float) -> None:
            """Speculatively duplicate requests stuck past the hedge budget.

            Two kinds of victim: a rider *in flight* on a slow batch (the
            classic tail-tolerance hedge — duplicated only when a second
            chip could actually beat the original's completion) and a
            request still *queued* past the budget (possible while the
            batcher holds its queue; its timeout is suppressed while the
            hedge flies).  Every hedge is a single-request batch on an
            idle chip; whichever copy completes first is counted, the
            loser is cancelled if still queued or finishes uncounted.
            """

            def eligible(request: Request) -> bool:
                rid = request.request_id
                waited = now - origins.get(rid, request.arrival_ns)
                return (waited > budget_ns and rid not in hedged
                        and rid not in hedge_outstanding
                        and rid not in winners and rid not in orphaned)

            def launch(request: Request, model: str,
                       beat_ns: Optional[float]) -> bool:
                """Fly one hedge copy; False when no chip is idle."""
                nonlocal seq
                idle = [w for w in self.fleet.idle_workers(now)
                        if w.index not in inflight and ctrl.available(w)]
                if not idle:
                    return False
                worker = self.policy.choose_worker(
                    idle, model, smallest_batch, self.plan_cache, now,
                    self.switch_cost)
                plan = plan_for(self.plan_cache, worker, model,
                                smallest_batch)
                service_ns = service_latency_ns(plan, worker,
                                                self.switch_cost)
                completion = now + service_ns
                if beat_ns is not None and completion >= beat_ns:
                    return True  # the hedge cannot win: not worth chip time
                switched = is_plan_switch(plan, worker, self.switch_cost)
                if switched:
                    worker.plan_switches += 1
                    worker.switch_ns += plan.weight_replace_ns
                worker.loaded_plan = plan.key
                worker.busy_until_ns = completion
                heapq.heappush(
                    events,
                    (completion, _EVENT_FREE, worker.index, seq,
                     worker.index),
                )
                seq += 1
                nominal_plan = self.plan_cache.get(model, worker.chip_name,
                                                   smallest_batch)
                inflight[worker.index] = _Inflight(
                    epoch=worker.epoch,
                    start_ns=now,
                    completion_ns=completion,
                    service_ns=service_ns,
                    plan=plan,
                    batch=smallest_batch,
                    served=1,
                    requests=[request],
                    model=model,
                    nominal_ns=nominal_plan.latency_ns + (
                        nominal_plan.weight_replace_ns if switched
                        else 0.0),
                    hedge=True,
                )
                # the original stays where it is — no depth change, no
                # policy bookkeeping: a hedge is extra chip work, not
                # extra offered load
                hedged.add(request.request_id)
                hedge_outstanding[request.request_id] = worker.index
                health = ctrl.health_for(worker.index)
                health.expected_ns = completion
                health.expected_epoch = worker.epoch
                ctrl.hedges += 1
                if tele is not None:
                    tele.dispatch(now, [request], worker, model,
                                  smallest_batch, completion, switched,
                                  hedge=True)
                return True

            for index in sorted(inflight):
                record = inflight[index]
                if record.hedge:
                    continue
                for request in record.requests:
                    if eligible(request) and not launch(
                            request, record.model, record.completion_ns):
                        return
            for model in self.policy.order_queues(queues):
                for request in list(queues[model]):
                    if eligible(request) and not launch(request, model, None):
                        return

        def add_chip(now: float) -> None:
            """Autoscale up: append a cold chip.

            Its ``loaded_plan`` is the :data:`~repro.serve.control.COLD_PLAN`
            sentinel, so (with switch cost modelled) the first dispatch is a
            plan switch and pays the incoming plan's weight-replacement —
            new capacity is not free capacity.
            """
            chip_name = (self.control.scale_chip
                         or self.fleet.workers[0].chip_name).upper()
            worker = ChipWorker(index=len(self.fleet.workers),
                                chip_name=chip_name)
            worker.loaded_plan = COLD_PLAN
            worker.busy_until_ns = now
            self.fleet.workers.append(worker)
            ctrl.last_scale_ns = now
            ctrl.scale_ups += 1

        def retire_chip(now: float) -> bool:
            """Autoscale down: decommission the newest idle healthy chip."""
            candidates = [
                w for w in self.fleet.workers
                if ctrl.available(w) and w.up
                and w.index not in inflight and w.busy_until_ns <= now
            ]
            if not candidates:
                return False
            ctrl.retired.add(candidates[-1].index)
            ctrl.last_scale_ns = now
            ctrl.scale_downs += 1
            return True

        def replace_resident_plans(now: float) -> None:
            """Re-pin resident plans across the idle survivors.

            Runs after any topology change (quarantine, re-admission,
            scale event): a small assignment solve over the span-matrix
            prices, weighted by the observed traffic mix, decides which
            plan each idle available chip should hold; chips whose
            assignment differs pre-warm it, paying the weight-replacement
            cost up front so the next dispatch runs warm.

            Without switch-cost modelling there is no weight-replacement
            to pre-pay and ``loaded_plan`` never affects latency, so the
            whole pass is skipped.
            """
            nonlocal seq
            if not self.switch_cost:
                return
            weights = ctrl.model_weights()
            chips = [w for w in self.fleet.workers
                     if ctrl.available(w) and w.up
                     and w.index not in inflight and w.busy_until_ns <= now]
            if not weights or not chips:
                return
            by_index = {w.index: w for w in chips}

            def plan_of(worker: ChipWorker, model: str) -> CompiledPlan:
                batch = ctrl.preferred_batch(model, smallest_batch)
                return plan_for(self.plan_cache, worker, model, batch)

            def price(index: int, model: str) -> float:
                worker = by_index[index]
                return plan_of(worker, model).latency_ns * worker.latency_factor

            def miss(model: str) -> float:
                return min(price(w.index, model)
                           + plan_of(w, model).weight_replace_ns
                           for w in chips)

            assignment = place_plans([w.index for w in chips],
                                     sorted(weights), weights, price, miss)
            applied = False
            for index in sorted(assignment):
                worker = by_index[index]
                plan = plan_of(worker, assignment[index])
                if worker.loaded_plan == plan.key:
                    continue  # already warm: nothing to pay
                if self.switch_cost:
                    # pre-warming is a plan switch paid up front: the chip
                    # is busy writing crossbar weights until it completes
                    warm_ns = plan.weight_replace_ns * worker.latency_factor
                    worker.plan_switches += 1
                    worker.switch_ns += plan.weight_replace_ns
                    worker.busy_ns += warm_ns
                    worker.busy_until_ns = now + warm_ns
                    ctrl.replacement_ns += warm_ns
                    # a no-payload free event re-triggers dispatch when the
                    # warm-up completes (there is no inflight record, so
                    # the handler only runs try_dispatch)
                    heapq.heappush(
                        events,
                        (now + warm_ns, _EVENT_FREE, worker.index, seq,
                         worker.index),
                    )
                    seq += 1
                worker.loaded_plan = plan.key
                applied = True
            if applied:
                ctrl.replacements += 1

        def apply_command(command: Dict[str, object], now: float) -> None:
            """Apply one observatory command at simulation instant ``now``.

            Every command is recorded (applied or rejected) with the
            instant it landed; rejections never raise — a bad command from
            a live client must not kill the run.
            """
            nonlocal seq
            op = str(command.get("op", ""))
            entry: Dict[str, object] = {
                "op": op,
                "t_ms": (now - first_arrival) * 1e-6,
            }
            try:
                if op == "inject_fault":
                    if not use_ft:
                        raise ValueError(
                            "inject_fault needs a fault-aware run "
                            "(fault_tolerance or control active)")
                    spec = str(command["spec"])
                    fault_events = [parse_inject(spec)]
                    validate_fault_targets(fault_events,
                                           len(self.fleet.workers))
                    schedule = materialize(fault_events,
                                           len(self.fleet.workers))
                    for at_us, action, chip, factor in schedule:
                        heapq.heappush(
                            events,
                            (now + at_us * 1e3, _EVENT_FAULT, chip, seq,
                             (action, chip, factor)),
                        )
                        seq += 1
                    entry["spec"] = spec
                    entry["events"] = len(schedule)
                elif op == "set_policy":
                    name = str(command["policy"])
                    new_policy = make_policy(name)
                    new_policy.reset()
                    self.policy = new_policy
                    entry["policy"] = name
                elif op == "autoscale_bounds":
                    if ctrl is None:
                        raise ValueError(
                            "autoscale_bounds needs an active control "
                            "plane")
                    lo = int(command["min_chips"])
                    hi = int(command["max_chips"])
                    new_config = replace(self.control, autoscale=True,
                                         min_chips=lo, max_chips=hi)
                    self.control = new_config
                    ctrl.config = new_config
                    entry["min_chips"] = lo
                    entry["max_chips"] = hi
                else:
                    raise ValueError(f"unknown command op {op!r}")
                entry["status"] = "applied"
            except (KeyError, TypeError, ValueError) as exc:
                entry["status"] = "rejected"
                entry["error"] = str(exc)
            applied_commands.append(entry)
            if tele is not None and tele.sink is not None:
                tele.sink("event", dict(entry, type="command"))

        # --- event loop -------------------------------------------------
        while events:
            now, kind, _, _, payload = heapq.heappop(events)
            if now > tele_next_ns:
                # lazily sample every timeline boundary strictly before
                # this event.  State only changes when events process, and
                # worker busy-until horizons are themselves future event
                # times, so each boundary reads exactly the queue depth /
                # utilisation / control counters a dedicated boundary tick
                # would have seen — without the heap traffic.  Boundaries
                # at exactly `now` wait: same-instant events settle first.
                ctl_snap = control_counters() if ctrl is not None else None
                workers = self.fleet.workers
                while tele_next_ns < now:
                    up_chips = 0
                    busy = 0
                    for w in workers:
                        if w.up:
                            up_chips += 1
                            if w.busy_until_ns > tele_next_ns:
                                busy += 1
                    tele_sample(
                        tele_k - 1, depth,
                        busy / up_chips if up_chips else 0.0,
                        ctl_snap,
                    )
                    tele_k += 1
                    tele_next_ns = first_arrival + tele_k * tele_interval_ns
                if tele_flush is not None:
                    # boundaries just closed at least one window — every
                    # K-th one, render and stream the windows now provably
                    # final against the current lower bound on the run end
                    # (the counter lives here so skipped boundaries cost
                    # one compare, not a call that early-returns)
                    tele_flush_k += 1
                    if tele_flush_k >= FLUSH_EVERY_BOUNDARIES:
                        tele_flush_k = 0
                        tele_flush(max(last_completion, last_arrival_ns))
            if commands is not None:
                for command in commands.drain():
                    apply_command(command, now)
            if kind == _EVENT_ARRIVAL:
                request = payload
                model = request.model
                if tele is not None:
                    tele.arrival(now, request)
                if request.attempt == 0:
                    previous = last_arrival.get(model)
                    if previous is not None:
                        gap = request.arrival_ns - previous
                        # simultaneous arrivals (duplicate trace timestamps,
                        # batch completions under closed-loop traffic) carry no
                        # rate information: a zero gap would drag the EMA
                        # toward 0 and make the batcher hold to the deadline
                        if gap > 0:
                            current = ema.get(model)
                            ema[model] = (
                                gap if current is None
                                else _EMA_ALPHA * gap + (1.0 - _EMA_ALPHA) * current
                            )
                    last_arrival[model] = request.arrival_ns
                    last_arrival_ns = max(last_arrival_ns, request.arrival_ns)
                    models_seen.setdefault(model)
                    remaining[model] -= 1
                    if use_ft:
                        origins[request.request_id] = request.arrival_ns
                        if should_shed(request, now):
                            shed += 1
                            if tele is not None:
                                tele.shed(now, request)
                            finish_without_service(request, now)
                            try_dispatch(now)
                            continue
                # retries skip the rate bookkeeping above — a re-submission
                # is not new offered load — and bypass admission control
                # (the request was already admitted once)
                queue = queues.setdefault(model, deque())
                if use_ft and request.priority > 0:
                    # a promoted final-attempt retry queues ahead of plain
                    # arrivals, behind earlier promoted ones (stable order)
                    position = 0
                    while (position < len(queue)
                           and queue[position].priority >= request.priority):
                        position += 1
                    queue.insert(position, request)
                else:
                    queue.append(request)
                change_depth(now, +1)
                if use_ft:
                    queued_keys.add((request.request_id, request.attempt))
                    if ft.timeout_us > 0:
                        heapq.heappush(
                            events,
                            (now + ft.timeout_us * 1e3, _EVENT_TIMEOUT, 0, seq,
                             request),
                        )
                        seq += 1
            elif kind == _EVENT_FAULT:
                action, chip, factor = payload
                worker = self.fleet.workers[chip]
                if action == ACTION_FAIL:
                    if worker.up:
                        worker.up = False
                        worker.epoch += 1
                        worker.failures += 1
                        worker.down_since_ns = now
                        failures += 1
                        if tele is not None:
                            tele.fault(now, "fail", chip)
                        record = inflight.pop(chip, None)
                        if record is not None:
                            # the in-flight batch dies with the chip: its
                            # partial work is wasted and every rider retries
                            # (with backoff) or is lost — unless a hedge
                            # covers it, or its other copy already won
                            worker.lost_batches += 1
                            worker.lost_requests += record.served
                            worker.lost_ns += now - record.start_ns
                            if tele is not None:
                                tele.batch_killed(now, record.requests,
                                                  worker)
                            for request in record.requests:
                                rid = request.request_id
                                if ctrl is not None:
                                    if rid in winners:
                                        # already counted via the copy
                                        # that completed first
                                        winners.discard(rid)
                                        hedge_outstanding.pop(rid, None)
                                        continue
                                    if record.hedge:
                                        # the hedge died; the original
                                        # still covers the request unless
                                        # it was itself killed earlier
                                        hedged.discard(rid)
                                        hedge_outstanding.pop(rid, None)
                                        if rid in orphaned:
                                            orphaned.discard(rid)
                                            if not try_retry(request, now):
                                                lost += 1
                                                if tele is not None:
                                                    tele.lost(now, request)
                                                finish_without_service(
                                                    request, now)
                                        continue
                                    if rid in hedged:
                                        # the original died but its hedge
                                        # is still flying: the hedge
                                        # carries the request now
                                        orphaned.add(rid)
                                        continue
                                if not try_retry(request, now):
                                    lost += 1
                                    if tele is not None:
                                        tele.lost(now, request)
                                    finish_without_service(request, now)
                elif action == ACTION_RECOVER:
                    if not worker.up:
                        if tele is not None:
                            tele.fault(now, "recover", chip)
                        worker.up = True
                        # recorded as a window, not a running sum: the
                        # report clamps every window to the simulation
                        # horizon, so a recovery scheduled past the last
                        # event can never yield downtime > wall time
                        worker.outages.append((worker.down_since_ns, now))
                        worker.down_since_ns = None
                        worker.busy_until_ns = now
                elif action == ACTION_STRAGGLE:
                    # in-flight batches keep their completion time; the new
                    # factor prices every dispatch from here on
                    worker.latency_factor = factor
                elif action == ACTION_DRAM:
                    worker.dram_factor = factor
            elif kind == _EVENT_TIMEOUT:
                request = payload
                key = (request.request_id, request.attempt)
                if key in queued_keys:
                    if request.request_id in hedge_outstanding:
                        # a hedge is already racing for this request: the
                        # wait is being mitigated, so the original keeps
                        # queueing instead of burning a retry attempt
                        pass
                    else:
                        queued_keys.discard(key)
                        queues[request.model].remove(request)
                        change_depth(now, -1)
                        if tele is not None:
                            tele.queue_exit(now, request, "timeout")
                        if not try_retry(request, now):
                            timeouts_n += 1
                            if tele is not None:
                                tele.timeout(now, request)
                            finish_without_service(request, now)
            elif kind == _EVENT_DEADLINE:
                model = payload
                if pending_deadline.get(model) == now and queues.get(model):
                    forced[model] = True
                    pending_deadline.pop(model, None)
            elif kind == _EVENT_FREE and use_ft:
                record = inflight.get(payload)
                worker = self.fleet.workers[payload]
                if (record is not None and record.completion_ns == now
                        and record.epoch == worker.epoch):
                    finalize(worker, record, now)
                # otherwise the event is stale: the chip died (and maybe
                # recovered) since this batch was dispatched
            elif kind == _EVENT_CONTROL:
                ctrl.ticks += 1
                ctrl.update_utilisation(now, self.fleet.workers)
                changed = ctrl.assess(now, self.fleet.workers)
                budget_ns = ctrl.hedge_budget_ns()
                if budget_ns is not None:
                    try_hedge(now, budget_ns)
                queued_total = sum(len(q) for q in queues.values())
                decision = ctrl.scale_decision(now, self.fleet.workers,
                                               queued_total)
                if decision > 0:
                    add_chip(now)
                    changed = True
                elif decision < 0:
                    changed = retire_chip(now) or changed
                if changed and self.control.replace_plans:
                    replace_resident_plans(now)
                try_dispatch(now)
                # re-arm the tick only while there is something left to
                # control: external events or in-flight work still coming,
                # or a queue that quarantined/scalable capacity could yet
                # serve.  A finished run must not be kept alive by its own
                # control ticks (they also never extend the makespan).
                queued_total = sum(len(q) for q in queues.values())
                # the handler's own event is already popped and the chain
                # re-arms one event at a time, so everything still in the
                # heap is external — no scan needed
                has_external = len(events) > 0
                blocked_live = any(
                    w.up and w.index in ctrl.blocked
                    for w in self.fleet.workers)
                can_grow = (self.control.autoscale
                            and len(self.fleet.workers) - len(ctrl.retired)
                            < self.control.max_chips)
                if has_external or inflight or (
                        queued_total > 0 and (blocked_live or can_grow)):
                    heapq.heappush(
                        events,
                        (now + interval_ns, _EVENT_CONTROL, 0, seq, None))
                    seq += 1
            # on the fault-free path _EVENT_FREE carries no state change:
            # the worker's counters were updated at dispatch, and
            # busy_until_ns now equals `now`
            try_dispatch(now)

        # --- report -----------------------------------------------------
        # roll back command-driven configuration swaps (the commands block
        # records what ran); the report echoes the configured baseline
        self.policy = base_policy
        self.control = base_control
        # the clock starts at the first arrival, not t=0: replayed traces may
        # carry large epoch-style timestamps, and the idle prefix before the
        # first request exists must not dilute throughput/utilisation (the
        # queue-depth integral already starts there)
        end_ns = max(last_completion, last_arrival_ns)
        makespan_ns = end_ns - first_arrival
        span_s = makespan_ns * 1e-9
        offered_span_s = (last_arrival_ns - first_arrival) * 1e-9
        for worker in self.fleet.workers:
            # close the books on chips still down when the run ends, then
            # sum the outage windows clamped to the horizon: a chip whose
            # scripted recovery lies beyond the last event reports at most
            # the run's wall time as downtime, never more
            outages = list(worker.outages)
            if not worker.up and worker.down_since_ns is not None:
                outages.append((worker.down_since_ns, end_ns))
                worker.down_since_ns = end_ns
            downtime_ns = 0.0
            for start_ns, stop_ns in outages:
                downtime_ns += max(
                    0.0, min(stop_ns, end_ns) - min(start_ns, end_ns))
            worker.downtime_ns = downtime_ns
        total_downtime_ns = sum(w.downtime_ns for w in self.fleet.workers)
        availability = (
            max(0.0, min(1.0, 1.0 - total_downtime_ns
                         / (len(self.fleet.workers) * makespan_ns)))
            if makespan_ns > 0 else 1.0
        )
        latencies.sort()
        waits.sort()
        total_energy_pj = sum(w.energy_pj for w in self.fleet.workers)
        completed = stream.lat.count if stream is not None else len(latencies)
        per_chip = []
        for worker in self.fleet.workers:
            row: Dict[str, object] = {
                "chip": worker.label,
                "class": worker.chip_name,
                "batches": worker.batches_served,
                "requests": worker.requests_served,
                "busy_ms": worker.busy_ns * 1e-6,
                "utilisation": worker.utilisation(makespan_ns),
                "energy_mj": worker.energy_pj * 1e-9,
            }
            if self.switch_cost:
                row["plan_switches"] = worker.plan_switches
                row["switch_ms"] = worker.switch_ns * 1e-6
            if use_ft:
                row["failures"] = worker.failures
                row["downtime_ms"] = worker.downtime_ns * 1e-6
                row["lost_requests"] = worker.lost_requests
            per_chip.append(row)
        slo_blocks: Dict[str, Dict[str, float]] = {}
        for model, target_ms in sorted(self.slos.items()):
            if stream is not None:
                sketch = stream.by_model.get(model)
                count = sketch.count if sketch is not None else 0
                slo_blocks[model] = {
                    "target_ms": target_ms,
                    "completed": count,
                    "p50_ms": (sketch.percentile(50.0) * 1e-6
                               if sketch is not None else 0.0),
                    "p95_ms": (sketch.percentile(95.0) * 1e-6
                               if sketch is not None else 0.0),
                    "p99_ms": (sketch.percentile(99.0) * 1e-6
                               if sketch is not None else 0.0),
                    "attainment": (stream.attained.get(model, 0) / count
                                   if count else 0.0),
                }
                continue
            model_latencies = sorted(by_model.get(model, []))
            count = len(model_latencies)
            target_ns = target_ms * 1e6
            attained = sum(1 for v in model_latencies if v <= target_ns)
            slo_blocks[model] = {
                "target_ms": target_ms,
                "completed": count,
                "p50_ms": _percentile(model_latencies, 50) * 1e-6,
                "p95_ms": _percentile(model_latencies, 95) * 1e-6,
                "p99_ms": _percentile(model_latencies, 99) * 1e-6,
                "attainment": attained / count if count else 0.0,
            }
        if stream is not None:
            # constant-memory terminal report: P² sketch estimates stand in
            # for the exact nearest-rank percentiles (documented error
            # bound on :class:`~repro.serve.telemetry.P2Quantile`)
            latency_ms = {
                "mean": stream.lat.mean() * 1e-6,
                "p50": stream.lat.percentile(50.0) * 1e-6,
                "p95": stream.lat.percentile(95.0) * 1e-6,
                "p99": stream.lat.percentile(99.0) * 1e-6,
                "max": stream.lat.max * 1e-6,
            }
            wait_ms = {
                "mean": stream.wait.mean() * 1e-6,
                "p95": stream.wait.percentile(95.0) * 1e-6,
                "max": stream.wait.max * 1e-6,
            }
        else:
            latency_ms = {
                "mean": (sum(latencies) / completed) * 1e-6 if completed else 0.0,
                "p50": _percentile(latencies, 50) * 1e-6,
                "p95": _percentile(latencies, 95) * 1e-6,
                "p99": _percentile(latencies, 99) * 1e-6,
                "max": latencies[-1] * 1e-6 if latencies else 0.0,
            }
            wait_ms = {
                "mean": (sum(waits) / completed) * 1e-6 if completed else 0.0,
                "p95": _percentile(waits, 95) * 1e-6,
                "max": waits[-1] * 1e-6 if waits else 0.0,
            }
        timeline_rows: List[Dict[str, object]] = []
        telemetry_block: Dict[str, object] = {}
        if tele is not None:
            up_end = sum(1 for w in self.fleet.workers if w.up)
            busy_end = sum(1 for w in self.fleet.workers
                           if w.up and w.busy_until_ns > end_ns)
            timeline_rows = tele.finish(
                end_ns, depth, busy_end / up_end if up_end else 0.0,
                control_counters() if ctrl is not None else None,
            )
            # exact-mode hub histograms are batch-folded from the sample
            # lists here rather than per completion (order-independent)
            tele.fill_histograms(latencies, waits)
            telemetry_block = tele.snapshot()
        traffic = dict(traffic_info or {})
        return ServingReport(
            fleet_spec=self.fleet.spec,
            policy=self.policy.name,
            traffic=traffic,
            models=tuple(sorted(models_seen)),
            optimizer=self.plan_cache.optimizer,
            mode=self.plan_cache.mode.value,
            batch_sizes=self.batcher.batch_sizes,
            max_wait_us=self.batcher.max_wait_ns * 1e-3,
            num_requests=expected,
            completed=completed,
            makespan_ms=makespan_ns * 1e-6,
            throughput_rps=completed / span_s if span_s > 0 else 0.0,
            offered_rps=expected / offered_span_s if offered_span_s > 0 else 0.0,
            latency_ms=latency_ms,
            wait_ms=wait_ms,
            queue_depth={
                "mean": depth_integral / makespan_ns if makespan_ns > 0 else 0.0,
                "max": float(depth_max),
            },
            batches=batches,
            mean_batch=completed / batches if batches else 0.0,
            batch_histogram=batch_histogram,
            served_histogram=served_histogram,
            padded_batches=padded_batches,
            per_chip=per_chip,
            total_energy_mj=total_energy_pj * 1e-9,
            energy_per_request_mj=(total_energy_pj * 1e-9 / completed) if completed else 0.0,
            switch_cost=self.switch_cost,
            plan_switches=sum(w.plan_switches for w in self.fleet.workers),
            switch_ms=sum(w.switch_ns for w in self.fleet.workers) * 1e-6,
            slo=slo_blocks,
            fault_tolerance=use_ft,
            failures=failures,
            retries=retries,
            timeouts=timeouts_n,
            shed=shed,
            lost=lost,
            lost_work_ms=sum(w.lost_ns for w in self.fleet.workers) * 1e-6,
            degraded_dispatches=degraded,
            availability=availability,
            control=(ctrl.as_dict(self.fleet.workers, self._base_workers)
                     if ctrl is not None else {}),
            commands=applied_commands,
            timeline=timeline_rows,
            telemetry=telemetry_block,
            plan_cache=self.plan_cache.stats.as_dict(),
        )
