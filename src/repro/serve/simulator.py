"""Discrete-event serving simulator: request streams against a chip fleet.

The simulator replays a seed-deterministic request stream
(:mod:`repro.serve.traffic`) against a :class:`~repro.serve.fleet.Fleet` of
chips running compiled partition plans (:mod:`repro.serve.plans`), with a
:class:`~repro.serve.scheduler.SchedulingPolicy` choosing chips and a
:class:`~repro.serve.scheduler.DynamicBatcher` choosing batch sizes.  It
produces a :class:`ServingReport` with the quantities the paper's
single-inference metrics are a proxy for: sustained throughput, p50/p95/p99
request latency, queue depths, per-chip utilisation and energy.

Three event kinds drive the loop, in a deterministic total order
``(time, kind, sequence)``:

* **chip-free** — a chip finished its batch; its requests complete.
* **arrival** — a request joins its model's FIFO queue (and updates the
  per-model interarrival EMA the batcher's wait estimates use).
* **batch-deadline** — a held queue's batching-delay budget expired; the
  next dispatch for that model is forced.

After every event the simulator dispatches greedily: while an idle chip and
a non-empty queue exist (queues ordered by oldest head request — FIFO across
models), the batcher picks a size, the policy picks a chip, and the batch
occupies the chip for the plan's service latency.  Nothing consumes
randomness, so a fixed-seed request stream yields a bit-identical report —
including across cold-cache and warm-cache runs (plan-cache statistics are
reported, but deliberately excluded from :meth:`ServingReport.as_dict`'s
deterministic core, see ``determinism_dict``).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.serve.fleet import Fleet
from repro.serve.plans import PlanCache
from repro.serve.scheduler import DynamicBatcher, SchedulingPolicy, make_policy
from repro.serve.traffic import Request

#: deterministic event ordering: completions free chips before arrivals at
#: the same instant, and deadlines fire last
_EVENT_FREE, _EVENT_ARRIVAL, _EVENT_DEADLINE = 0, 1, 2

#: smoothing factor of the per-model interarrival EMA
_EMA_ALPHA = 0.2


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class ServingReport:
    """Outcome of one serving run (all quantities deterministic per seed)."""

    fleet_spec: str
    policy: str
    traffic: Dict[str, object]
    models: Tuple[str, ...]
    optimizer: str
    mode: str
    batch_sizes: Tuple[int, ...]
    max_wait_us: float
    num_requests: int
    completed: int
    makespan_ms: float
    throughput_rps: float
    offered_rps: float
    latency_ms: Dict[str, float]
    wait_ms: Dict[str, float]
    queue_depth: Dict[str, float]
    batches: int
    mean_batch: float
    batch_histogram: Dict[int, int]
    padded_batches: int
    per_chip: List[Dict[str, object]]
    total_energy_mj: float
    energy_per_request_mj: float
    plan_cache: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def determinism_dict(self) -> Dict[str, object]:
        """The seed-deterministic core of the report.

        Everything except the plan-cache counters, which legitimately differ
        between cold-cache and warm-cache runs of the same seed; the
        fixed-seed replay tests compare exactly this dictionary.
        """
        data = self.as_dict()
        data.pop("plan_cache", None)
        return data

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-compatible dictionary (for serialization)."""
        return {
            "fleet": self.fleet_spec,
            "policy": self.policy,
            "traffic": dict(self.traffic),
            "models": list(self.models),
            "optimizer": self.optimizer,
            "mode": self.mode,
            "batch_sizes": list(self.batch_sizes),
            "max_wait_us": self.max_wait_us,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "makespan_ms": self.makespan_ms,
            "throughput_rps": self.throughput_rps,
            "offered_rps": self.offered_rps,
            "latency_ms": dict(self.latency_ms),
            "wait_ms": dict(self.wait_ms),
            "queue_depth": dict(self.queue_depth),
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "batch_histogram": {str(k): v for k, v in sorted(self.batch_histogram.items())},
            "padded_batches": self.padded_batches,
            "per_chip": [dict(row) for row in self.per_chip],
            "total_energy_mj": self.total_energy_mj,
            "energy_per_request_mj": self.energy_per_request_mj,
            "plan_cache": dict(self.plan_cache),
        }

    def summary_row(self) -> Dict[str, object]:
        """One flat headline row (for tables and benchmarks)."""
        return {
            "fleet": self.fleet_spec,
            "policy": self.policy,
            "traffic": str(self.traffic.get("traffic", "")),
            "requests": self.completed,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency_ms.get("p50", 0.0),
            "p95_ms": self.latency_ms.get("p95", 0.0),
            "p99_ms": self.latency_ms.get("p99", 0.0),
            "mean_batch": self.mean_batch,
            "utilisation": (
                sum(float(row["utilisation"]) for row in self.per_chip) / len(self.per_chip)
                if self.per_chip else 0.0
            ),
            "energy_per_request_mj": self.energy_per_request_mj,
        }


class ServingSimulator:
    """Replays a request stream against a fleet of chips."""

    def __init__(
        self,
        fleet: Fleet,
        plan_cache: PlanCache,
        policy: Union[str, SchedulingPolicy] = "latency",
        batcher: Optional[DynamicBatcher] = None,
        batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
        max_wait_us: float = 0.0,
    ) -> None:
        self.fleet = fleet
        self.plan_cache = plan_cache
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.batcher = (
            batcher if batcher is not None
            else DynamicBatcher(batch_sizes=batch_sizes, max_wait_us=max_wait_us)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[Request],
        traffic_info: Optional[Dict[str, object]] = None,
    ) -> ServingReport:
        """Simulate serving the request stream; returns the full report."""
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        arrivals = sorted(requests, key=lambda r: (r.arrival_ns, r.request_id))
        self.fleet.reset()

        # --- event heap: (time, kind, seq, payload) ---------------------
        events: List[Tuple[float, int, int, object]] = []
        seq = 0
        for request in arrivals:
            heapq.heappush(events, (request.arrival_ns, _EVENT_ARRIVAL, seq, request))
            seq += 1

        queues: Dict[str, Deque[Request]] = {}
        remaining: Dict[str, int] = {}
        for request in arrivals:
            remaining[request.model] = remaining.get(request.model, 0) + 1
        ema: Dict[str, float] = {}
        last_arrival: Dict[str, float] = {}
        pending_deadline: Dict[str, float] = {}
        forced: Dict[str, bool] = {}

        latencies: List[float] = []
        waits: List[float] = []
        batch_histogram: Dict[int, int] = {}
        padded_batches = 0
        batches = 0
        last_completion = 0.0

        # time-weighted queue depth accounting
        depth = 0
        depth_last_t = arrivals[0].arrival_ns
        depth_integral = 0.0
        depth_max = 0

        def change_depth(now: float, delta: int) -> None:
            nonlocal depth, depth_last_t, depth_integral, depth_max
            depth_integral += depth * (now - depth_last_t)
            depth_last_t = now
            depth += delta
            depth_max = max(depth_max, depth)

        def try_dispatch(now: float) -> None:
            nonlocal seq, batches, padded_batches, last_completion
            while True:
                idle = self.fleet.idle_workers(now)
                if not idle:
                    return
                candidates = sorted(
                    (model for model, queue in queues.items() if queue),
                    key=lambda m: (queues[m][0].arrival_ns, queues[m][0].request_id),
                )
                progressed = False
                for model in candidates:
                    queue = queues[model]
                    if forced.get(model):
                        batch = self.batcher.dispatch_size(len(queue))
                    else:
                        # cost the hold-vs-dispatch comparison on the chip the
                        # policy would actually dispatch to right now — on a
                        # heterogeneous fleet idle[0] may be a different class
                        # than the latency-aware policy's choice
                        reference_chip = self.policy.choose_worker(
                            idle, model, self.batcher.dispatch_size(len(queue)),
                            self.plan_cache, now,
                        ).chip_name
                        batch, deadline = self.batcher.choose(
                            queue_len=len(queue),
                            now_ns=now,
                            oldest_arrival_ns=queue[0].arrival_ns,
                            ema_interarrival_ns=ema.get(model, math.inf),
                            latency_of=lambda b: self.plan_cache.get(
                                model, reference_chip, b
                            ).latency_ns,
                            more_arrivals=remaining.get(model, 0) > 0,
                        )
                        if batch == 0:
                            if pending_deadline.get(model) != deadline:
                                pending_deadline[model] = deadline
                                heapq.heappush(
                                    events, (deadline, _EVENT_DEADLINE, seq, model)
                                )
                                seq += 1
                            continue
                    worker = self.policy.choose_worker(
                        idle, model, batch, self.plan_cache, now
                    )
                    served = min(batch, len(queue))
                    batch_requests = [queue.popleft() for _ in range(served)]
                    forced.pop(model, None)
                    pending_deadline.pop(model, None)
                    plan = self.plan_cache.get(model, worker.chip_name, batch)
                    completion = now + plan.latency_ns
                    worker.busy_until_ns = completion
                    worker.busy_ns += plan.latency_ns
                    worker.batches_served += 1
                    worker.requests_served += served
                    worker.energy_pj += plan.energy_pj
                    heapq.heappush(events, (completion, _EVENT_FREE, seq, worker.index))
                    seq += 1
                    for request in batch_requests:
                        latencies.append(completion - request.arrival_ns)
                        waits.append(now - request.arrival_ns)
                    change_depth(now, -served)
                    batches += 1
                    batch_histogram[batch] = batch_histogram.get(batch, 0) + 1
                    if served < batch:
                        padded_batches += 1
                    last_completion = max(last_completion, completion)
                    progressed = True
                    break
                if not progressed:
                    return

        # --- event loop -------------------------------------------------
        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _EVENT_ARRIVAL:
                request = payload
                model = request.model
                previous = last_arrival.get(model)
                if previous is not None:
                    gap = request.arrival_ns - previous
                    current = ema.get(model)
                    ema[model] = (
                        gap if current is None
                        else _EMA_ALPHA * gap + (1.0 - _EMA_ALPHA) * current
                    )
                last_arrival[model] = request.arrival_ns
                queues.setdefault(model, deque()).append(request)
                remaining[model] -= 1
                change_depth(now, +1)
            elif kind == _EVENT_DEADLINE:
                model = payload
                if pending_deadline.get(model) == now and queues.get(model):
                    forced[model] = True
                    pending_deadline.pop(model, None)
            # _EVENT_FREE carries no state change: the worker's counters were
            # updated at dispatch, and busy_until_ns now equals `now`
            try_dispatch(now)

        # --- report -----------------------------------------------------
        # the clock starts at the first arrival, not t=0: replayed traces may
        # carry large epoch-style timestamps, and the idle prefix before the
        # first request exists must not dilute throughput/utilisation (the
        # queue-depth integral already starts there)
        first_arrival = arrivals[0].arrival_ns
        last_arrival_ns = arrivals[-1].arrival_ns
        makespan_ns = max(last_completion, last_arrival_ns) - first_arrival
        span_s = makespan_ns * 1e-9
        offered_span_s = (last_arrival_ns - first_arrival) * 1e-9
        latencies.sort()
        waits.sort()
        total_energy_pj = sum(w.energy_pj for w in self.fleet.workers)
        completed = len(latencies)
        per_chip = [
            {
                "chip": worker.label,
                "class": worker.chip_name,
                "batches": worker.batches_served,
                "requests": worker.requests_served,
                "busy_ms": worker.busy_ns * 1e-6,
                "utilisation": worker.utilisation(makespan_ns),
                "energy_mj": worker.energy_pj * 1e-9,
            }
            for worker in self.fleet.workers
        ]
        traffic = dict(traffic_info or {})
        return ServingReport(
            fleet_spec=self.fleet.spec,
            policy=self.policy.name,
            traffic=traffic,
            models=tuple(sorted({r.model for r in arrivals})),
            optimizer=self.plan_cache.optimizer,
            mode=self.plan_cache.mode.value,
            batch_sizes=self.batcher.batch_sizes,
            max_wait_us=self.batcher.max_wait_ns * 1e-3,
            num_requests=len(arrivals),
            completed=completed,
            makespan_ms=makespan_ns * 1e-6,
            throughput_rps=completed / span_s if span_s > 0 else 0.0,
            offered_rps=len(arrivals) / offered_span_s if offered_span_s > 0 else 0.0,
            latency_ms={
                "mean": (sum(latencies) / completed) * 1e-6 if completed else 0.0,
                "p50": _percentile(latencies, 50) * 1e-6,
                "p95": _percentile(latencies, 95) * 1e-6,
                "p99": _percentile(latencies, 99) * 1e-6,
                "max": latencies[-1] * 1e-6 if latencies else 0.0,
            },
            wait_ms={
                "mean": (sum(waits) / completed) * 1e-6 if completed else 0.0,
                "p95": _percentile(waits, 95) * 1e-6,
                "max": waits[-1] * 1e-6 if waits else 0.0,
            },
            queue_depth={
                "mean": depth_integral / makespan_ns if makespan_ns > 0 else 0.0,
                "max": float(depth_max),
            },
            batches=batches,
            mean_batch=completed / batches if batches else 0.0,
            batch_histogram=batch_histogram,
            padded_batches=padded_batches,
            per_chip=per_chip,
            total_energy_mj=total_energy_pj * 1e-9,
            energy_per_request_mj=(total_energy_pj * 1e-9 / completed) if completed else 0.0,
            plan_cache=self.plan_cache.stats.as_dict(),
        )
