"""Streaming telemetry for the serving simulator: registry, timeline, tracing.

The serving stack up to PR 7 is a black box until the terminal
:class:`~repro.serve.simulator.ServingReport`: attainment can collapse
during a fault window, the autoscaler can react, and none of it is visible
until the run ends.  This module adds a **passive observability layer** —
four pieces, all pure observers of the simulator's deterministic event
order (they read state, never change it, and consume no randomness):

* **Metrics registry** — :class:`Telemetry`, one hub of named counters,
  gauge *sources* (callables returning a stats dictionary, e.g.
  ``PlanCacheStats.as_dict`` or the fleet's occupancy/energy totals) and
  :class:`Log2Histogram` histograms, snapshot-able at any instant in the
  :class:`~repro.perf.spantable.SpanTableStats` counter style.
* **Metrics timeline** — :class:`TimelineAccumulator` buckets every
  arrival/completion/fault/control observation into fixed windows of
  ``timeline_interval_us`` and renders one row per window: throughput,
  window p50/p95/p99 (from per-window :class:`Log2Histogram` sketches,
  not stored samples — factor-sqrt(2) bound), queue depth and
  utilisation sampled at each window boundary (lazily, at the simulator's
  first event pop past the boundary — between events state cannot change,
  so the sample is exactly what a dedicated boundary tick would read),
  per-model SLO attainment, and fault/control event counts.  Windows
  with zero completions or zero elapsed time report 0.0 rates — never NaN.
* **Streaming percentile sketches** — :class:`P2Quantile` (the classic
  piecewise-parabolic P² estimator: five markers, O(1) memory and update)
  and :class:`Log2Histogram` (fixed power-of-two bins).  Error contracts:
  P² is *exact* below 5 samples (it falls back to nearest rank) and stays
  within **15% relative error** of the exact nearest-rank percentile on
  the latency distributions the test suite pins (Poisson / bursty /
  diurnal / closed-loop, n >= 50); the log2 histogram's quantile is always
  within a **factor of sqrt(2)** of the exact nearest-rank sample (the
  estimate is the geometric midpoint of the bin holding that sample).
  ``TelemetryConfig.streaming_percentiles`` opts the *terminal* report
  into constant-memory sketches; the default path stores samples and
  stays bit-identical to the pre-telemetry simulator.
* **Request lifecycle tracing** — :class:`RequestTracer` samples every
  K-th request id (deterministic, no reservoirs) and records its span
  events — queued (arrival -> dispatch/shed/timeout), service (dispatch ->
  completion/kill, with chip/model/batch/plan-switch attributes), and
  instants for retries/hedges — exported as Chrome trace-event JSON
  (``chrome_trace()``), loadable in Perfetto / chrome://tracing.  Memory
  is bounded by ceil(N / K) request traces.

:class:`TelemetrySession` bundles the four per run and is what the
simulator threads through its event loop.  Telemetry-off runs take the
exact pre-telemetry code path (pinned bit-identical in
``tests/test_serve.py``); telemetry-on runs add ``timeline`` and
``telemetry`` report blocks and byte-identical artifacts for a fixed
seed.  Gate globally with ``REPRO_SERVE_TELEMETRY=0``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import envflags

from repro.sim.metrics import nearest_rank_percentile

_SQRT2 = math.sqrt(2.0)


def telemetry_enabled() -> bool:
    """Global telemetry gate (``REPRO_SERVE_TELEMETRY``; default on).

    Mirrors :func:`~repro.serve.faults.faults_enabled`: set the variable
    to ``0`` to drop every telemetry config wholesale — the simulator then
    takes the exact telemetry-off code path regardless of flags.
    """
    return envflags.serve_telemetry_enabled()


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the passive telemetry layer (all observers, no actuators).

    The default config is fully off and the simulator takes the exact
    pre-telemetry code path.  Each part arms independently:
    ``timeline_interval_us > 0`` buckets metrics into fixed windows,
    ``trace_every > 0`` traces every K-th request's lifecycle, and
    ``streaming_percentiles`` swaps the terminal report's sample-storing
    percentiles for constant-memory P² sketches (approximate — see the
    documented error bound on :class:`P2Quantile`).
    """

    #: metrics-timeline window in µs; 0 disables the timeline
    timeline_interval_us: float = 0.0
    #: trace every K-th request id; 0 disables lifecycle tracing
    trace_every: int = 0
    #: constant-memory terminal-report percentiles (approximate)
    streaming_percentiles: bool = False

    def __post_init__(self) -> None:
        if self.timeline_interval_us < 0:
            raise ValueError(
                f"timeline interval must be non-negative, got "
                f"{self.timeline_interval_us}")
        if self.trace_every < 0:
            raise ValueError(
                f"trace_every must be non-negative, got {self.trace_every}")

    @property
    def active(self) -> bool:
        """Whether any telemetry part runs at all."""
        return (self.timeline_interval_us > 0 or self.trace_every > 0
                or self.streaming_percentiles)


# ----------------------------------------------------------------------
# streaming percentile sketches
# ----------------------------------------------------------------------
class P2Quantile:
    """Streaming quantile via the P² (piecewise-parabolic) algorithm.

    Five markers track the running estimate of one quantile in O(1) memory
    and O(1) per-sample work (Jain & Chlamtac, 1985).  The first five
    samples are stored and the estimate is the **exact** nearest-rank
    percentile until the marker invariant can be established — so tiny
    windows degrade gracefully to the exact answer.  From the sixth sample
    on, marker heights move by parabolic (falling back to linear)
    interpolation; the tested accuracy contract on this repository's
    serving latency distributions is <= 15% relative error vs the exact
    nearest-rank percentile (see ``tests/test_telemetry.py``).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 100.0:
            raise ValueError(f"quantile must be in (0, 100), got {q}")
        self.q = float(q)
        p = self.q / 100.0
        self._increments: Tuple[float, ...] = (
            0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        self.count = 0
        self._heights: List[float] = []
        self._positions: List[int] = []
        self._desired: List[float] = []

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one sample into the sketch."""
        value = float(value)
        self.count += 1
        if self.count <= 5:
            # exact phase: keep the samples sorted; on the fifth they
            # become the initial marker heights
            lo, hi = 0, len(self._heights)
            while lo < hi:
                mid = (lo + hi) // 2
                if self._heights[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            self._heights.insert(lo, value)
            if self.count == 5:
                self._positions = [1, 2, 3, 4, 5]
                self._desired = [1.0 + 4.0 * inc for inc in self._increments]
            return
        heights, positions = self._heights, self._positions
        # locate the cell and stretch the extremes
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if value >= heights[i]:
                    cell = i
        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # nudge the three interior markers toward their desired positions
        for i in range(1, 4):
            drift = self._desired[i] - positions[i]
            if ((drift >= 1.0 and positions[i + 1] - positions[i] > 1)
                    or (drift <= -1.0 and positions[i - 1] - positions[i] < -1)):
                step = 1 if drift >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    # ------------------------------------------------------------------
    def value(self) -> float:
        """Current estimate (0.0 with no samples; exact below 5 samples)."""
        if self.count == 0:
            return 0.0
        if self.count < 5:
            return nearest_rank_percentile(self._heights, self.q)
        return self._heights[2]


class Log2Histogram:
    """Fixed-bin power-of-two latency histogram (constant memory).

    Bin ``b`` covers values in ``[2**b, 2**(b+1))`` (values below 1 fold
    into bin 0, values past the last bin into the last).  A quantile
    estimate is the geometric midpoint ``2**(b + 0.5)`` of the bin holding
    the exact nearest-rank sample, so for in-range positive samples it is
    guaranteed within a factor of ``sqrt(2)`` of the exact value — the
    documented (and tested) error bound.
    """

    def __init__(self, num_bins: int = 64) -> None:
        if num_bins < 1:
            raise ValueError(f"num_bins must be positive, got {num_bins}")
        self._bins = [0] * num_bins
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def _bucket(self, value: float) -> int:
        if value < 1.0:
            return 0
        # frexp's exponent is float-exact where floor(log2(...)) can
        # round wrong just below a power of two — and it is cheaper, which
        # matters: every completion feeds two of these histograms
        bucket = math.frexp(value)[1] - 1
        limit = len(self._bins) - 1
        return bucket if bucket < limit else limit

    def add(self, value: float) -> None:
        """Fold one sample into the histogram (same binning as _bucket)."""
        value = float(value)
        bins = self._bins
        if value < 1.0:
            bucket = 0
        else:
            bucket = math.frexp(value)[1] - 1
            limit = len(bins) - 1
            if bucket > limit:
                bucket = limit
        bins[bucket] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def extend(self, values: Sequence[float]) -> None:
        """Fold many samples in one pass (same binning as :meth:`add`).

        Histogram contents are order-independent, so batch-folding a
        sample list after the fact yields the same state as one
        :meth:`add` per event — at a fraction of the call overhead.
        """
        bins = self._bins
        limit = len(bins) - 1
        frexp = math.frexp
        count = 0
        total = 0.0
        peak = self.max
        for value in values:
            value = float(value)
            if value < 1.0:
                bucket = 0
            else:
                bucket = frexp(value)[1] - 1
                if bucket > limit:
                    bucket = limit
            bins[bucket] += 1
            count += 1
            total += value
            if value > peak:
                peak = value
        self.count += count
        self.total += total
        self.max = peak

    def quantile(self, q: float) -> float:
        """Geometric midpoint of the bin holding the nearest-rank sample."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for b, n in enumerate(self._bins):
            if n:
                seen += n
                if seen >= rank:
                    return _SQRT2 * (2.0 ** b)
        return _SQRT2 * (2.0 ** (len(self._bins) - 1))

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Several quantiles in one bin scan (``qs`` ascending).

        Bin-for-bin identical to calling :meth:`quantile` per ``q`` — the
        timeline renders three per window, so the shared scan matters.
        """
        if self.count == 0:
            return [0.0] * len(qs)
        count = self.count
        ranks = [max(1, math.ceil(q / 100.0 * count)) for q in qs]
        results: List[float] = []
        n_q = len(ranks)
        i = 0
        seen = 0
        for b, n in enumerate(self._bins):
            if n:
                seen += n
                while i < n_q and seen >= ranks[i]:
                    results.append(_SQRT2 * (2.0 ** b))
                    i += 1
                if i == n_q:
                    return results
        top = _SQRT2 * (2.0 ** (len(self._bins) - 1))
        while i < n_q:
            results.append(top)
            i += 1
        return results

    def mean(self) -> float:
        """Exact running mean (sums are cheap; only quantiles are binned)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Snapshot: count/mean/max plus the non-empty bins and quantiles."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "max": self.max,
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
            "bins": {str(b): n for b, n in enumerate(self._bins) if n},
        }


class StreamingQuantiles:
    """Constant-memory summary: count, mean, max and P² percentiles."""

    def __init__(self, quantiles: Sequence[float] = (50.0, 95.0, 99.0)) -> None:
        self._estimators = {float(q): P2Quantile(q) for q in quantiles}
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for estimator in self._estimators.values():
            estimator.add(value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Sketch estimate of the ``q``-th percentile (0.0 when empty)."""
        return self._estimators[float(q)].value()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class Telemetry:
    """One hub of named counters, gauge sources and histograms.

    Existing stat surfaces *register* rather than being re-implemented: a
    gauge source is any zero-argument callable returning a dictionary of
    numbers (``PlanCacheStats.as_dict``, a fleet occupancy/energy lambda,
    the controller's counter view, ...) evaluated lazily at
    :meth:`snapshot` time.  Counters are plain monotonic integers;
    histograms are :class:`Log2Histogram` created on first use.  Snapshots
    are deterministic: every mapping is emitted in sorted-key order.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._sources: Dict[str, Callable[[], Dict[str, object]]] = {}
        self._histograms: Dict[str, Log2Histogram] = {}

    def inc(self, name: str, delta: int = 1) -> None:
        """Increment the named counter (created at zero on first use)."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def register_source(self, name: str,
                        source: Callable[[], Dict[str, object]]) -> None:
        """Register (or replace) a gauge source evaluated at snapshot time."""
        self._sources[name] = source

    def histogram(self, name: str) -> Log2Histogram:
        """The named histogram, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Log2Histogram()
        return histogram

    def snapshot(self) -> Dict[str, object]:
        """Instantaneous view of every registered surface (sorted keys)."""
        return {
            "counters": {name: self._counters[name]
                         for name in sorted(self._counters)},
            "gauges": {name: dict(self._sources[name]())
                       for name in sorted(self._sources)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }


# ----------------------------------------------------------------------
# metrics timeline
# ----------------------------------------------------------------------
class _TimelineWindow:
    """Event-side accumulators of one timeline window."""

    __slots__ = ("arrivals", "completions", "shed", "timeouts", "lost",
                 "retries", "failures", "recoveries", "latency", "slo")

    def __init__(self) -> None:
        self.arrivals = 0
        self.completions = 0
        self.shed = 0
        self.timeouts = 0
        self.lost = 0
        self.retries = 0
        self.failures = 0
        self.recoveries = 0
        # windows use the log2 histogram sketch: one bucket increment per
        # completion (vs 3 P2 marker updates) keeps the per-event observer
        # cheap, and its factor-sqrt(2) bound is distribution-free — safe
        # for the handful-of-samples windows a fine-grained timeline has
        self.latency = Log2Histogram()
        #: per-model [attained, completed] for models with an SLO target
        self.slo: Dict[str, List[int]] = {}


#: control counters the timeline rows carry as per-window deltas
_CONTROL_KEYS = ("quarantines", "readmissions", "hedges",
                 "scale_ups", "scale_downs", "replacements")

#: attempt a mid-run flush every K-th window boundary, not every one —
#: per-boundary fold/scan call overhead on fine windows costs more than
#: the flush itself, and an observatory is just as live receiving its
#: windows a few simulated milliseconds later in small batches.  The
#: simulator holds the counter (an integer compare per boundary beats a
#: method call that early-returns); :meth:`TelemetrySession.finish`
#: always drains whatever the cadence left behind.
FLUSH_EVERY_BOUNDARIES = 32

#: stream a hub snapshot alongside every K-th mid-run window flush — a
#: peek materialises every gauge source and histogram, which on fine
#: timeline windows would dwarf the flush itself if paid per batch
_HUB_PEEK_EVERY = 16


class TimelineAccumulator:
    """Buckets observations into fixed windows and renders one row each.

    Event-side notes (arrivals, completions, faults, ...) are keyed by
    their own timestamp — ``window = floor((ts - origin) / interval)`` —
    so the fault-free accounting path, which records completions at
    dispatch time with a future completion timestamp, lands every event in
    the right window regardless of processing order.  State-side samples
    (queue depth, utilisation, cumulative control counters) are taken at
    each window boundary after same-instant events settle — the simulator
    samples lazily when it pops the first event past a boundary, which
    between events reads the identical state a dedicated tick would have;
    windows no sample reached forward-fill the last sample, and the final
    window takes the end-of-run flush.

    Per-window rates carry the zero guards the report contract requires:
    a window with **zero completions or zero elapsed time renders 0.0**
    throughput and attainment — never NaN, never a ZeroDivisionError.
    """

    def __init__(self, interval_ns: float,
                 slo_models: Sequence[str] = ()) -> None:
        if interval_ns <= 0:
            raise ValueError(
                f"timeline interval must be positive, got {interval_ns}")
        self.interval_ns = float(interval_ns)
        self.slo_models: Tuple[str, ...] = tuple(slo_models)
        self.origin_ns: Optional[float] = None
        self._windows: Dict[int, _TimelineWindow] = {}
        #: boundary samples as (queue_depth, utilisation, control) tuples
        self._samples: Dict[int, Tuple[int, float, Dict[str, object]]] = {}
        #: last (index, window) the hot notes touched — consecutive events
        #: usually land in the same window, so the common case is one
        #: integer compare instead of a dict probe
        self._last_index = -1
        self._last_window: Optional[_TimelineWindow] = None
        # --- incremental rendering state ------------------------------
        # rows() used to render every window in one end-of-run pass with
        # the carry/delta bookkeeping in locals.  The same bookkeeping now
        # lives on the instance so :meth:`flush_ready` can render finalised
        # windows mid-run and :meth:`rows` renders only the remainder —
        # the concatenation is byte-identical to the old single pass.
        #: every row rendered so far, in window order
        self._rendered: List[Dict[str, object]] = []
        #: index of the next window to render
        self._next_render = 0
        #: windows strictly below this index were closed by a boundary
        #: sample — the simulator samples boundary k only after popping an
        #: event strictly past it, and every note is keyed at its event's
        #: own timestamp (>= that pop time), so closed windows can never
        #: receive another note
        self._closed_upto = 0
        self._carry_depth = 0
        self._carry_util = 0.0
        self._carry_control: Dict[str, object] = {}
        self._previous_control: Dict[str, object] = self._carry_control
        self._previous_values: Tuple[int, ...] = (0,) * len(_CONTROL_KEYS)
        self._zero_deltas = dict.fromkeys(_CONTROL_KEYS, 0)
        #: whether the run carries control-counter columns — constant per
        #: run (the simulator passes the controller snapshot to *every*
        #: boundary sample or to none), decided at the first render
        self._has_control: Optional[bool] = None
        self._empty_slo_block = {model: 0.0 for model in self.slo_models}
        # quiet windows (the drain tail of a long run can have hundreds)
        # share one read-only empty window instead of paying a fresh
        # sketch construction each
        self._empty_window = _TimelineWindow()

    # ------------------------------------------------------------------
    def start(self, origin_ns: float) -> None:
        """Anchor window 0 at the first arrival."""
        self.origin_ns = float(origin_ns)

    def _window_at(self, ts_ns: float) -> _TimelineWindow:
        index = int((ts_ns - self.origin_ns) // self.interval_ns)
        if index == self._last_index:
            return self._last_window
        if index < 0:
            index = 0
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _TimelineWindow()
        self._last_index = index
        self._last_window = window
        return window

    # --- event-side notes (keyed by the event's own timestamp) ---------
    def note_arrival(self, ts_ns: float) -> None:
        self._window_at(ts_ns).arrivals += 1

    def note_completion(self, ts_ns: float, latency_ns: float,
                        model: Optional[str] = None,
                        slo_ok: Optional[bool] = None) -> None:
        window = self._window_at(ts_ns)
        window.completions += 1
        # window.latency.add inlined — this is the single hottest observer
        # statement (one histogram fold per completed request)
        value = float(latency_ns)
        hist = window.latency
        bins = hist._bins
        if value < 1.0:
            bucket = 0
        else:
            bucket = math.frexp(value)[1] - 1
            limit = len(bins) - 1
            if bucket > limit:
                bucket = limit
        bins[bucket] += 1
        hist.count += 1
        hist.total += value
        if value > hist.max:
            hist.max = value
        if model is not None and slo_ok is not None:
            running = window.slo.get(model)
            if running is None:
                running = window.slo[model] = [0, 0]
            running[1] += 1
            if slo_ok:
                running[0] += 1

    def note_shed(self, ts_ns: float) -> None:
        self._window_at(ts_ns).shed += 1

    def note_timeout(self, ts_ns: float) -> None:
        self._window_at(ts_ns).timeouts += 1

    def note_lost(self, ts_ns: float) -> None:
        self._window_at(ts_ns).lost += 1

    def note_retry(self, ts_ns: float) -> None:
        self._window_at(ts_ns).retries += 1

    def note_fault(self, ts_ns: float, action: str) -> None:
        window = self._window_at(ts_ns)
        if action == "recover":
            window.recoveries += 1
        else:
            window.failures += 1

    # --- state-side samples (taken at window boundaries) ---------------
    def sample(self, index: int, queue_depth: int, utilisation: float,
               control: Optional[Dict[str, object]] = None) -> None:
        """Boundary sample closing window ``index`` (control = cumulative).

        The ``control`` dictionary is kept by reference, not copied —
        callers hand over a snapshot the sampled values never mutate
        (ticks where nothing changed may legally share one object;
        :meth:`rows` exploits that identity to skip zero deltas).
        """
        index = int(index)
        self._samples[index] = (
            int(queue_depth), float(utilisation), control or {})
        if index >= self._closed_upto:
            self._closed_upto = index + 1

    # ------------------------------------------------------------------
    def _render_one(self, index: int, span_ns: float) -> Dict[str, object]:
        """Render window ``index`` as one report row (carry state advances).

        ``span_ns`` only matters through ``min(window_end, span_ns)`` in
        the throughput clip; every caller guarantees the window end is at
        or below the span it passes, so a mid-run flush (which sees a
        *lower bound* on the final span) renders the identical row the
        end-of-run pass would have.
        """
        interval_ns = self.interval_ns
        window = self._windows.get(index, self._empty_window)
        sampled = self._samples.get(index)
        if sampled is not None:
            self._carry_depth, self._carry_util, self._carry_control = sampled
        start_ns = index * interval_ns
        completed = window.completions
        # the window-rate guard: zero completions or zero elapsed time
        # renders 0.0, never NaN / ZeroDivisionError
        if completed:
            elapsed_s = max(
                0.0, min(start_ns + interval_ns, span_ns) - start_ns
            ) * 1e-9
            throughput = completed / elapsed_s if elapsed_s > 0 else 0.0
            p50, p95, p99 = window.latency.quantiles((50.0, 95.0, 99.0))
            p50 *= 1e-6
            p95 *= 1e-6
            p99 *= 1e-6
        else:
            throughput = 0.0
            p50 = p95 = p99 = 0.0
        if window.slo:
            attained = sum(a for a, _ in window.slo.values())
            measured = sum(c for _, c in window.slo.values())
            attainment = attained / measured if measured else 0.0
        else:
            attainment = 0.0
        row: Dict[str, object] = {
            "window": index,
            "t_ms": start_ns * 1e-6,
            "arrivals": window.arrivals,
            "completed": completed,
            "throughput_rps": throughput,
            "p50_ms": p50,
            "p95_ms": p95,
            "p99_ms": p99,
            "queue_depth": self._carry_depth,
            "utilisation": self._carry_util,
            "attainment": attainment,
            "shed": window.shed,
            "timeouts": window.timeouts,
            "lost": window.lost,
            "retries": window.retries,
            "failures": window.failures,
            "recoveries": window.recoveries,
        }
        slo_models = self.slo_models
        if slo_models:
            if window.slo:
                block: Dict[str, float] = {}
                for model in slo_models:
                    attained_m, measured_m = window.slo.get(model, (0, 0))
                    block[model] = (attained_m / measured_m
                                    if measured_m else 0.0)
                row["slo"] = block
            else:
                row["slo"] = dict(self._empty_slo_block)
        if self._has_control:
            # delta bookkeeping: forward-filled rows (and ticks where the
            # simulator handed back the same unchanged snapshot object)
            # carry the identical cumulative dict, so identity alone proves
            # every delta is zero — only a *new* snapshot pays the per-key
            # reads
            if self._carry_control is self._previous_control:
                row.update(self._zero_deltas)
            else:
                current = self._carry_control
                values = tuple(int(current.get(key, 0))
                               for key in _CONTROL_KEYS)
                for key, value, prev in zip(_CONTROL_KEYS, values,
                                            self._previous_values):
                    row[key] = value - prev
                self._previous_values = values
                self._previous_control = current
        self._rendered.append(row)
        self._next_render = index + 1
        return row

    def flush_ready(self, end_floor_ns: float) -> List[Dict[str, object]]:
        """Render every window that can no longer change (mid-run flush).

        ``end_floor_ns`` is the simulator's current ``max(last_completion,
        last_arrival)`` — a monotone **lower bound** on the final run end.
        A window is safe to flush when it is (a) closed by a boundary
        sample (no further notes can land in it) and (b) strictly below
        ``ceil(span_floor / interval) - 1`` — a lower bound on the final
        row count, so the end-of-run flush can never overwrite it and its
        elapsed time is a full interval either way.  Flushed rows are
        final: :meth:`rows` renders only the remainder, and the
        concatenation is byte-identical to one end-of-run pass.
        """
        if self.origin_ns is None:
            return []
        span_floor = float(end_floor_ns) - self.origin_ns
        if span_floor <= 0:
            return []
        last_floor = int(math.ceil(span_floor / self.interval_ns)) - 1
        limit = min(self._closed_upto, last_floor)
        if self._next_render >= limit:
            return []
        if self._has_control is None:
            self._has_control = any(s[2] for s in self._samples.values())
        flushed: List[Dict[str, object]] = []
        append = flushed.append
        render = self._render_one
        drop_window = self._windows.pop
        drop_sample = self._samples.pop
        for index in range(self._next_render, limit):
            append(render(index, span_floor))
            # a flushed window can never be touched again — drop its
            # accumulators so a long streamed run stays bounded-memory
            drop_window(index, None)
            drop_sample(index, None)
        # the note fast-path cache may point at a dropped window
        self._last_index = -1
        self._last_window = None
        return flushed

    def rows(self, end_ns: float, queue_depth: int, utilisation: float,
             control: Optional[Dict[str, object]] = None
             ) -> List[Dict[str, object]]:
        """Render every window through the end of the run as report rows.

        Returns the **complete** timeline — any rows already streamed out
        by :meth:`flush_ready` plus the freshly rendered remainder.
        """
        if self.origin_ns is None:
            return []
        span_ns = max(0.0, float(end_ns) - self.origin_ns)
        interval_ns = self.interval_ns
        last = (int(math.ceil(span_ns / interval_ns)) - 1
                if span_ns > 0 else 0)
        # event windows can land past the span (dispatch-time completion
        # timestamps); boundary samples past both are drain-tail ticks kept
        # alive by armed-but-stale timeout events — the timeline stops at
        # the run span, it does not stretch to cover them
        if self._windows:
            last = max(last, max(self._windows))
        # the end-of-run flush is the final window's boundary sample
        # (flush_ready's span floor guarantees every flushed window sits
        # strictly below the final ``last``, so this never collides)
        self._samples[last] = (
            int(queue_depth), float(utilisation), control or {})
        if self._has_control is None:
            self._has_control = any(s[2] for s in self._samples.values())
        for index in range(self._next_render, last + 1):
            self._render_one(index, span_ns)
        return self._rendered


# ----------------------------------------------------------------------
# request lifecycle tracing
# ----------------------------------------------------------------------
class RequestTracer:
    """Chrome trace-event recorder for every K-th request's lifecycle.

    Sampling is deterministic — request ids divisible by ``every`` are
    traced, everything else is ignored at the hook, so memory is bounded
    by ``ceil(N / K)`` request traces regardless of retries or hedges
    (all attempts and copies of one request share its id, and its trace
    row).  Spans are emitted as complete ``X`` events (queued and service
    phases, with model/attempt/chip/batch/plan-switch attributes) plus
    ``i`` instants for point actions (retry scheduled, request lost);
    :meth:`chrome_trace` returns the standard trace-event JSON object —
    ``ts``-sorted, loadable in Perfetto / chrome://tracing.  Timestamps
    are microseconds relative to the first arrival.
    """

    def __init__(self, every: int) -> None:
        if every < 1:
            raise ValueError(f"trace sampling must be >= 1, got {every}")
        self.every = int(every)
        self.origin_ns = 0.0
        #: compact (ts_us, tid, ph, name, dur_us, args) records — the hot
        #: hooks append tuples and :meth:`chrome_trace` materialises the
        #: trace-event dictionaries once at export
        self._events: List[Tuple[float, int, str, str, float,
                                 Dict[str, object]]] = []
        self._queue_open: Dict[Tuple[int, int], Tuple[float, Dict[str, object]]] = {}
        self._service_open: Dict[Tuple[int, int], Tuple[float, Dict[str, object]]] = {}
        #: distinct request ids with any recorded activity (memory bound)
        self.traced_requests: Set[int] = set()

    # ------------------------------------------------------------------
    def start(self, origin_ns: float) -> None:
        self.origin_ns = float(origin_ns)

    def sampled(self, request_id: int) -> bool:
        """Whether this request id is in the deterministic K-sample."""
        return request_id % self.every == 0

    def _ts_us(self, ts_ns: float) -> float:
        return (ts_ns - self.origin_ns) * 1e-3

    def _span(self, name: str, request_id: int, start_ns: float,
              stop_ns: float, args: Dict[str, object]) -> None:
        self._events.append((
            (start_ns - self.origin_ns) * 1e-3,
            request_id,
            "X",
            name,
            max(0.0, (stop_ns - start_ns) * 1e-3),
            args,
        ))

    # --- queued phase ---------------------------------------------------
    def begin_queue(self, request_id: int, attempt: int, ts_ns: float,
                    model: str) -> None:
        if not self.sampled(request_id):
            return
        self.traced_requests.add(request_id)
        self._queue_open[(request_id, attempt)] = (
            ts_ns, {"model": model, "attempt": attempt})

    def end_queue(self, request_id: int, attempt: int, ts_ns: float,
                  outcome: str) -> None:
        opened = self._queue_open.pop((request_id, attempt), None)
        if opened is None:
            return
        start_ns, args = opened
        self._span("queued", request_id, start_ns, ts_ns,
                   {**args, "outcome": outcome})

    # --- service phase --------------------------------------------------
    def begin_service(self, request_id: int, chip_index: int, ts_ns: float,
                      args: Dict[str, object]) -> None:
        if not self.sampled(request_id):
            return
        self.traced_requests.add(request_id)
        self._service_open[(request_id, chip_index)] = (ts_ns, dict(args))

    def end_service(self, request_id: int, chip_index: int, ts_ns: float,
                    outcome: str) -> None:
        opened = self._service_open.pop((request_id, chip_index), None)
        if opened is None:
            return
        start_ns, args = opened
        self._span("service", request_id, start_ns, ts_ns,
                   {**args, "outcome": outcome})

    # --- instants -------------------------------------------------------
    def instant(self, request_id: int, ts_ns: float, name: str,
                args: Optional[Dict[str, object]] = None) -> None:
        if not self.sampled(request_id):
            return
        self.traced_requests.add(request_id)
        self._events.append((
            (ts_ns - self.origin_ns) * 1e-3,
            request_id,
            "i",
            name,
            0.0,
            dict(args or {}),
        ))

    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """The trace-event JSON object (``ts``-sorted, deterministic)."""
        events: List[Dict[str, object]] = []
        # records sort exactly like the old per-dict key; the stable sort
        # keeps append order for full ties, as before
        for ts, tid, ph, name, dur, args in sorted(
                self._events, key=lambda e: e[:4]):
            event: Dict[str, object] = {
                "name": name,
                "cat": "request",
                "ph": ph,
                "ts": ts,
            }
            if ph == "X":
                event["dur"] = dur
            else:
                event["s"] = "t"
            event["pid"] = 0
            event["tid"] = tid
            event["args"] = args
            events.append(event)
        return {"displayTimeUnit": "ms", "traceEvents": events}


# ----------------------------------------------------------------------
# per-run session: what the simulator threads through its event loop
# ----------------------------------------------------------------------
class _StreamingReportStats:
    """Constant-memory substitutes for the report's sample lists."""

    def __init__(self) -> None:
        self.lat = StreamingQuantiles((50.0, 95.0, 99.0))
        self.wait = StreamingQuantiles((95.0,))
        self.by_model: Dict[str, StreamingQuantiles] = {}
        self.attained: Dict[str, int] = {}

    def note(self, latency_ns: float, wait_ns: float, model: str,
             slo_ok: Optional[bool]) -> None:
        self.lat.add(latency_ns)
        self.wait.add(wait_ns)
        if slo_ok is not None:
            per_model = self.by_model.get(model)
            if per_model is None:
                per_model = self.by_model[model] = StreamingQuantiles(
                    (50.0, 95.0, 99.0))
            per_model.add(latency_ns)
            if slo_ok:
                self.attained[model] = self.attained.get(model, 0) + 1


class TelemetrySession:
    """Per-run telemetry state: hub + timeline + tracer + stream sketches.

    One session is created per :meth:`ServingSimulator.run` when the
    configured :class:`TelemetryConfig` is active; the simulator calls the
    observer hooks below from its event sites.  Every hook only *reads*
    simulation state — a telemetry-on run replays the telemetry-off event
    order exactly and produces a bit-identical report minus the new
    ``timeline``/``telemetry`` blocks.
    """

    def __init__(self, config: TelemetryConfig,
                 slo_models: Sequence[str] = ()) -> None:
        self.config = config
        self.hub = Telemetry()
        self.timeline = (
            TimelineAccumulator(config.timeline_interval_us * 1e3,
                                slo_models=slo_models)
            if config.timeline_interval_us > 0 else None
        )
        self.tracer = (RequestTracer(config.trace_every)
                       if config.trace_every > 0 else None)
        self.stream = (_StreamingReportStats()
                       if config.streaming_percentiles else None)
        # the two hub histograms every completion feeds, bound once — the
        # completion hook is the hottest observer site
        self._latency_hist = self.hub.histogram("latency_ns")
        self._wait_hist = self.hub.histogram("wait_ns")
        # in exact mode the simulator keeps every latency/wait sample for
        # the report anyway, so the hub histograms are batch-folded from
        # those lists at snapshot time (fold order is irrelevant to a
        # histogram) instead of two .add() calls per completion on the
        # hot path; streaming mode keeps no sample lists, so it feeds
        # the histograms live
        self._live_hists = self.stream is not None
        #: tracer sampling stride (0 = tracing off) — hooks check the
        #: modulo inline so untraced requests pay one comparison, not a
        #: method call into the tracer
        self._trace_every = self.tracer.every if self.tracer else 0
        # exact-mode note buffering: the arrival/completion hooks append
        # one compact record here and the fold into timeline windows
        # happens once inside finish() — per-window additions commute, so
        # the rendered rows are identical to per-event notes at a
        # fraction of the hot-path cost.  The buffers are O(completed),
        # the same class of memory as the exact report's sample lists;
        # streaming runs fold per event to keep their constant-memory
        # contract
        self._buffer_notes = self.timeline is not None and self.stream is None
        self._pending_arrivals: List[float] = []
        self._pending_completions: List[
            Tuple[float, float, Optional[str], Optional[bool]]] = []
        # event counters are plain attributes, not hub.inc() calls — the
        # hooks fire once per event and an attribute increment is ~3x
        # cheaper than a dict-backed counter bump; snapshot() materialises
        # them into the hub, where they are indistinguishable from live
        # increments
        self._n_arrivals = 0
        self._n_completions = 0
        self._n_dispatches = 0
        self._n_hedge_dispatches = 0
        self._n_shed = 0
        self._n_retries = 0
        self._n_timeouts = 0
        self._n_lost = 0
        self._n_failures = 0
        self._n_recoveries = 0
        #: live-stream sink — the simulator attaches a callable
        #: ``sink(kind, payload)`` when an observatory is watching the
        #: run; completed windows, fault events and hub snapshots are
        #: pushed through it mid-run.  ``None`` (the default) keeps the
        #: pure batch end-of-run path.
        self.sink: Optional[Callable[[str, Dict[str, object]], None]] = None
        #: flush batches streamed so far — hub peeks ride along every
        #: :data:`_HUB_PEEK_EVERY`-th batch (see :meth:`flush_stream`)
        self._flush_batches = 0
        # snapshot() drains the attribute counters into the hub while
        # peek() merges them without draining; the lock keeps a hub read
        # from another thread from seeing a half-drained state
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self, origin_ns: float) -> None:
        """Anchor the timeline and trace clock at the first arrival."""
        if self.timeline is not None:
            self.timeline.start(origin_ns)
        if self.tracer is not None:
            self.tracer.start(origin_ns)

    # --- observer hooks (called by the simulator's event sites) --------
    def arrival(self, ts_ns: float, request) -> None:
        if request.attempt == 0:
            self._n_arrivals += 1
            if self._buffer_notes:
                self._pending_arrivals.append(ts_ns)
            elif self.timeline is not None:
                self.timeline.note_arrival(ts_ns)
        if self._trace_every and request.request_id % self._trace_every == 0:
            self.tracer.begin_queue(request.request_id, request.attempt,
                                    ts_ns, request.model)

    def shed(self, ts_ns: float, request) -> None:
        self._n_shed += 1
        if self.timeline is not None:
            self.timeline.note_shed(ts_ns)
        if self.tracer is not None:
            self.tracer.end_queue(request.request_id, request.attempt,
                                  ts_ns, "shed")

    def retry(self, ts_ns: float, request) -> None:
        self._n_retries += 1
        if self.timeline is not None:
            self.timeline.note_retry(ts_ns)
        if self.tracer is not None:
            self.tracer.instant(request.request_id, ts_ns, "retry",
                                {"attempt": request.attempt + 1})

    def queue_exit(self, ts_ns: float, request, outcome: str) -> None:
        """A queued request left without dispatch (timeout / cancelled)."""
        if self._trace_every and request.request_id % self._trace_every == 0:
            self.tracer.end_queue(request.request_id, request.attempt,
                                  ts_ns, outcome)

    def timeout(self, ts_ns: float, request) -> None:
        self._n_timeouts += 1
        if self.timeline is not None:
            self.timeline.note_timeout(ts_ns)

    def lost(self, ts_ns: float, request) -> None:
        self._n_lost += 1
        if self.timeline is not None:
            self.timeline.note_lost(ts_ns)
        if self.tracer is not None:
            self.tracer.instant(request.request_id, ts_ns, "lost", {})

    def fault(self, ts_ns: float, action: str, chip_index: int) -> None:
        if action == "recover":
            self._n_recoveries += 1
        else:
            self._n_failures += 1
        if self.timeline is not None:
            self.timeline.note_fault(ts_ns, action)
        if self.sink is not None:
            self.sink("event", {"type": "fault", "ts_ms": ts_ns * 1e-6,
                                "action": action, "chip": chip_index})

    def dispatch(self, ts_ns: float, requests, worker, model: str,
                 batch: int, completion_ns: float, switched: bool,
                 hedge: bool = False) -> None:
        if hedge:
            self._n_hedge_dispatches += 1
        else:
            self._n_dispatches += 1
        every = self._trace_every
        if every:
            # the args dict is only built once a sampled rider turns up —
            # most batches carry none (begin_service copies it per span)
            args: Optional[Dict[str, object]] = None
            for request in requests:
                if request.request_id % every:
                    continue
                if args is None:
                    args = {
                        "chip": worker.index,
                        "class": worker.chip_name,
                        "model": model,
                        "batch": batch,
                        "plan_switch": bool(switched),
                    }
                    if hedge:
                        args["hedge"] = True
                if not hedge:
                    # a hedge copy leaves the original queued: its queue
                    # span stays open until the race resolves
                    self.tracer.end_queue(request.request_id,
                                          request.attempt, ts_ns,
                                          "dispatched")
                self.tracer.begin_service(request.request_id, worker.index,
                                          ts_ns, args)

    def completion(self, ts_ns: float, request, latency_ns: float,
                   wait_ns: float, slo_ok: Optional[bool], worker) -> None:
        """One request completed end to end (counted exactly once)."""
        self._n_completions += 1
        if self._live_hists:
            self._latency_hist.add(latency_ns)
            self._wait_hist.add(wait_ns)
        # ``stream`` is fed by the simulator's accounting sites directly
        # (it *replaces* the sample lists there); feeding it here too
        # would double-count
        if self._buffer_notes:
            self._pending_completions.append(
                (ts_ns, latency_ns, request.model, slo_ok))
        elif self.timeline is not None:
            self.timeline.note_completion(ts_ns, latency_ns, request.model,
                                          slo_ok)
        if self._trace_every and request.request_id % self._trace_every == 0:
            self.tracer.end_service(request.request_id, worker.index, ts_ns,
                                    "completed")

    def end_service(self, ts_ns: float, request, worker,
                    outcome: str) -> None:
        """A service span ended without a counted completion."""
        if self._trace_every and request.request_id % self._trace_every == 0:
            self.tracer.end_service(request.request_id, worker.index, ts_ns,
                                    outcome)

    def batch_killed(self, ts_ns: float, requests, worker) -> None:
        """A chip died mid-batch; its riders' service spans end killed."""
        if self.tracer is not None:
            for request in requests:
                self.tracer.end_service(request.request_id, worker.index,
                                        ts_ns, "killed")

    def tick(self, index: int, queue_depth: int, utilisation: float,
             control: Optional[Dict[str, object]] = None) -> None:
        """The boundary sample closing window ``index``."""
        if self.timeline is not None:
            self.timeline.sample(index, queue_depth, utilisation, control)

    # ------------------------------------------------------------------
    def _fold_pending(self) -> None:
        """Fold the buffered exact-mode notes into the timeline windows.

        Order is irrelevant: every per-window update is an addition, so
        folding at a mid-run flush boundary and folding once at finish
        render the identical rows.
        """
        if not (self._pending_arrivals or self._pending_completions):
            return
        timeline = self.timeline
        note_arrival = timeline.note_arrival
        for ts_ns in self._pending_arrivals:
            note_arrival(ts_ns)
        note_completion = timeline.note_completion
        for record in self._pending_completions:
            note_completion(*record)
        self._pending_arrivals.clear()
        self._pending_completions.clear()

    def flush_stream(self, end_floor_ns: float) -> None:
        """Push every newly-final window (and a hub peek) through the sink.

        Called by the simulator at boundary-sample time when a sink is
        attached.  ``end_floor_ns`` is the current lower bound on the run
        end (``max(last_completion, last_arrival)``); windows the
        accumulator proves final against that bound are rendered now and
        streamed — the rendered rows are the exact objects the end-of-run
        timeline block will contain.  The simulator only calls this every
        :data:`FLUSH_EVERY_BOUNDARIES`-th boundary: the cadence shapes
        *when* batches stream, never their content, and :meth:`finish`
        always drains whatever remains.
        """
        timeline = self.timeline
        sink = self.sink
        if timeline is None or sink is None:
            return
        self._fold_pending()
        flushed = timeline.flush_ready(end_floor_ns)
        if not flushed:
            return
        for row in flushed:
            sink("window", row)
        # a hub peek walks every gauge source and histogram — per flush
        # batch that would cost more than the flush itself on fine
        # windows, so peeks ride along every K-th batch (the first one
        # immediately, so a watcher sees counters as soon as windows
        # flow; the report's telemetry block supplies the final state)
        if self._flush_batches % _HUB_PEEK_EVERY == 0:
            sink("hub", self.peek())
        self._flush_batches += 1

    def finish(self, end_ns: float, queue_depth: int, utilisation: float,
               control: Optional[Dict[str, object]] = None
               ) -> List[Dict[str, object]]:
        """Flush the final window and render the timeline rows."""
        timeline = self.timeline
        if timeline is None:
            return []
        self._fold_pending()
        already = timeline._next_render
        rows = timeline.rows(end_ns, queue_depth, utilisation, control)
        sink = self.sink
        if sink is not None:
            # stream the tail so subscribers saw every window exactly once
            for row in rows[already:]:
                sink("window", row)
        return rows

    def fill_histograms(self, latencies: Sequence[float],
                        waits: Sequence[float]) -> None:
        """Batch-fold the report's sample lists into the hub histograms.

        Exact-mode runs keep every latency/wait sample for the report, so
        the simulator hands the finished lists over here once instead of
        the completion hook paying two histogram folds per event.  A
        streaming run kept no lists and fed the histograms live — this is
        a no-op there.
        """
        if self._live_hists:
            return
        self._latency_hist.extend(latencies)
        self._wait_hist.extend(waits)

    def _event_counter_items(self) -> Tuple[Tuple[str, int], ...]:
        return (
            ("arrivals", self._n_arrivals),
            ("completions", self._n_completions),
            ("dispatches", self._n_dispatches),
            ("hedge_dispatches", self._n_hedge_dispatches),
            ("shed", self._n_shed),
            ("retries", self._n_retries),
            ("timeouts", self._n_timeouts),
            ("lost", self._n_lost),
            ("failures", self._n_failures),
            ("recoveries", self._n_recoveries),
        )

    def _config_echo(self) -> Dict[str, object]:
        return {
            "timeline_interval_us": self.config.timeline_interval_us,
            "trace_every": self.config.trace_every,
            "streaming_percentiles": self.config.streaming_percentiles,
        }

    def snapshot(self) -> Dict[str, object]:
        """The report's ``telemetry`` block: hub snapshot + config echo."""
        # drain the attribute-backed event counters into the hub so the
        # snapshot (and any later hub read) sees them; draining keeps a
        # second snapshot() call from double-counting
        with self._counter_lock:
            counters = self.hub._counters
            for name, value in self._event_counter_items():
                if value:
                    counters[name] = counters.get(name, 0) + value
            self._n_arrivals = self._n_completions = 0
            self._n_dispatches = self._n_hedge_dispatches = 0
            self._n_shed = self._n_retries = self._n_timeouts = 0
            self._n_lost = self._n_failures = self._n_recoveries = 0
            snap = self.hub.snapshot()
        snap["config"] = self._config_echo()
        return snap

    def peek(self) -> Dict[str, object]:
        """Non-destructive mid-run hub view (same shape as :meth:`snapshot`).

        The attribute-backed event counters are merged into the snapshot
        *copy* instead of drained into the hub, so a later ``snapshot()``
        (or another ``peek()``) never double-counts.
        """
        with self._counter_lock:
            snap = self.hub.snapshot()
            counters = snap["counters"]
            for name, value in self._event_counter_items():
                if value:
                    counters[name] = counters.get(name, 0) + value
        # merged names may be new — re-emit in sorted order to keep the
        # hub's deterministic-snapshot contract
        snap["counters"] = {name: counters[name]
                            for name in sorted(counters)}
        snap["config"] = self._config_echo()
        return snap
