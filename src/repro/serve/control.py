"""Self-healing serving control plane: detection, hedging, autoscaling.

PR 6 made fleets mortal and gave individual requests survival tools
(timeouts, retries, shedding); this module closes the loop from the
metrics the serving report computes to *actions* on the running fleet.  A
:class:`Controller` runs on a fixed control-interval tick — a dedicated
``CONTROL`` event kind in the simulator's deterministic ``(time, kind,
tie, seq)`` total order — observes windowed per-chip / per-model health
signals, and drives four actuators:

* **Failure detection + quarantine** — the controller tracks, per chip,
  the completion it *expects* from the last dispatched batch and an EMA of
  the observed-over-nominal service-time ratio.  A chip whose expected
  completion has passed with no completion observed (its batch died with
  the chip — the tick notices before any scripted recovery does) or whose
  service ratio exceeds :attr:`ControlConfig.straggler_ratio` times the
  fleet median for :attr:`ControlConfig.quarantine_after` consecutive
  ticks is quarantined: drained from the dispatchable pool and routed
  around.  Re-admission is probation with flap damping — each time the
  same chip is re-quarantined its next probation doubles.  Detections are
  scored against injected ground truth (the chip's actual ``up`` /
  ``latency_factor`` state) into true/false-positive counters.
* **Hedged requests** — the classic tail-tolerance move: a queued request
  that has waited past the :attr:`ControlConfig.hedge_after_pct`
  percentile of the recent completed-latency window is speculatively
  duplicated onto a second chip as a single-request batch.  First
  completion wins; the loser is cancelled if still queued, or counted
  (never double-charged into any request-fate counter) if already
  executing.
* **SLO-driven autoscaler** — grows the fleet when windowed SLO
  attainment drops below :attr:`ControlConfig.scale_up_below` (or queue
  depth per available chip exceeds :attr:`ControlConfig.scale_up_depth`,
  or nothing can serve a non-empty queue), shrinks it when the fleet idles
  below :attr:`ControlConfig.scale_down_util`, between
  ``min_chips``/``max_chips`` bounds with a per-direction cooldown.  New
  chips arrive *cold*: their ``loaded_plan`` is the :data:`COLD_PLAN`
  sentinel, so the first dispatch pays the plan-switch weight-replacement
  cost through the existing ``loaded_plan`` machinery.
* **Plan re-placement** — on quarantine/readmission/scale events the
  resident plans are re-pinned across the surviving chips by a small
  assignment solve over the span-matrix prices (compiled plan latency +
  weight-replacement), weighted by the observed model mix: each idle
  survivor pre-warms the plan the assignment gives it, paying the WR cost
  up front so the next dispatch of that model runs warm.

Everything is deterministic: the controller consumes no randomness, every
window and EMA is driven by simulated-time events, and ties break on chip
index / model name.  With no :class:`ControlConfig` (or
``interval_us == 0``) the simulator never creates a controller and takes
the exact pre-control code path — pinned bit-identical in
``tests/test_serve.py`` against ``tests/data/serving_pre_pr7.json``.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.serve.fleet import ChipWorker
from repro.serve.plans import PlanKey
from repro.sim.metrics import nearest_rank_percentile

#: ``loaded_plan`` sentinel for a chip the autoscaler just added: unequal
#: to every real :class:`PlanKey`, so the chip's first dispatch is a plan
#: switch and pays the incoming plan's weight-replacement cost (a cold
#: chip has nothing staged on its crossbars).
COLD_PLAN = PlanKey(model="<cold>", chip="", dram=None, batch=0,
                    mode=None, optimizer="")

#: smoothing factor of the per-chip service-ratio EMA and the fleet
#: utilisation EMA (heavier than the batcher's interarrival EMA — health
#: signals should react within a few ticks)
_HEALTH_ALPHA = 0.3

#: exhaustive placement search budget: assignments enumerated exactly up
#: to this many combinations, greedy regret-matching beyond
_PLACEMENT_EXHAUSTIVE_LIMIT = 4096


@dataclass(frozen=True)
class ControlConfig:
    """Knobs of the self-healing control plane (all times in µs).

    ``interval_us`` is the master switch: 0 (the default) disables the
    controller entirely and the simulator takes the exact pre-control code
    path.  Hedging additionally needs ``hedge_after_pct > 0`` and the
    autoscaler ``autoscale=True`` — detection/quarantine and plan
    re-placement are on whenever the controller runs (re-placement can be
    switched off with ``replace_plans=False``).
    """

    #: control tick interval; 0 disables the controller
    interval_us: float = 0.0
    # --- failure detection / quarantine --------------------------------
    #: consecutive suspect ticks before a straggling chip is quarantined
    quarantine_after: int = 2
    #: service-ratio EMA threshold vs the fleet median (suspicion trigger)
    straggler_ratio: float = 1.6
    #: quarantine duration before re-admission; doubles per flap
    probation_us: float = 2000.0
    # --- hedged requests -----------------------------------------------
    #: latency percentile of the observed window a queued request must
    #: outwait before it is hedged; 0 disables hedging
    hedge_after_pct: float = 0.0
    #: completed-latency samples required before hedging arms
    hedge_min_samples: int = 8
    # --- SLO-driven autoscaler -----------------------------------------
    #: whether the autoscaler may grow/shrink the fleet
    autoscale: bool = False
    min_chips: int = 1
    max_chips: int = 8
    #: windowed SLO attainment below which the fleet grows
    scale_up_below: float = 0.9
    #: queued requests per available chip above which the fleet grows
    scale_up_depth: float = 4.0
    #: fleet-utilisation EMA below which the fleet shrinks
    scale_down_util: float = 0.3
    #: minimum simulated time between scale events
    cooldown_us: float = 2000.0
    #: chip class the autoscaler adds (default: the fleet's first class)
    scale_chip: Optional[str] = None
    # --- plan re-placement ---------------------------------------------
    #: re-pin resident plans across survivors on quarantine/scale events
    replace_plans: bool = True
    #: sliding-window length of the latency / attainment / mix windows
    window: int = 64

    def __post_init__(self) -> None:
        if self.interval_us < 0:
            raise ValueError(
                f"control interval must be non-negative, got {self.interval_us}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be at least 1, got {self.quarantine_after}")
        if self.straggler_ratio <= 1.0:
            raise ValueError(
                f"straggler_ratio must exceed 1, got {self.straggler_ratio}")
        if self.probation_us <= 0:
            raise ValueError(
                f"probation_us must be positive, got {self.probation_us}")
        if not 0.0 <= self.hedge_after_pct < 100.0:
            raise ValueError(
                f"hedge_after_pct must be in [0, 100), got {self.hedge_after_pct}")
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be at least 1, got {self.hedge_min_samples}")
        if self.min_chips < 1:
            raise ValueError(f"min_chips must be at least 1, got {self.min_chips}")
        if self.max_chips < self.min_chips:
            raise ValueError(
                f"max_chips ({self.max_chips}) must be >= min_chips "
                f"({self.min_chips})")
        if not 0.0 < self.scale_up_below <= 1.0:
            raise ValueError(
                f"scale_up_below must be a fraction in (0, 1], got "
                f"{self.scale_up_below}")
        if self.scale_up_depth <= 0:
            raise ValueError(
                f"scale_up_depth must be positive, got {self.scale_up_depth}")
        if not 0.0 <= self.scale_down_util < 1.0:
            raise ValueError(
                f"scale_down_util must be a fraction in [0, 1), got "
                f"{self.scale_down_util}")
        if self.cooldown_us < 0:
            raise ValueError(
                f"cooldown_us must be non-negative, got {self.cooldown_us}")
        if self.window < 1:
            raise ValueError(f"window must be at least 1, got {self.window}")

    @property
    def active(self) -> bool:
        """Whether the control plane runs at all."""
        return self.interval_us > 0


@dataclass
class _ChipHealth:
    """The controller's per-chip view — observations, not ground truth."""

    #: EMA of observed/nominal service-time ratio (None until a completion)
    ratio_ema: Optional[float] = None
    #: completion time of the outstanding dispatched batch (None when idle)
    expected_ns: Optional[float] = None
    #: worker epoch at that dispatch — a moved epoch at detection time
    #: proves the chip died mid-batch even if it has since recovered
    expected_epoch: int = 0
    #: consecutive ticks the chip looked like a straggler
    strikes: int = 0
    #: probation end of the current quarantine (None when not quarantined)
    quarantined_until: Optional[float] = None
    #: times this chip has been quarantined (doubles the next probation)
    flaps: int = 0


# Nearest-rank percentile shared with the simulator's terminal report and
# the telemetry sketch tests — one definition of "p95" everywhere.
percentile = nearest_rank_percentile


def place_plans(
    chips: Sequence[int],
    models: Sequence[str],
    weights: Dict[str, float],
    price: Callable[[int, str], float],
    miss: Callable[[str], float],
) -> Dict[int, str]:
    """Assign one resident model plan to each chip (the re-placement solve).

    Minimises the expected warm service cost of the observed traffic mix:
    ``sum_m weights[m] * (best price(c, m) over chips assigned m)``, with
    an uncovered model paying ``miss(m)`` (its best cold price, i.e. plan
    latency plus the weight-replacement its first dispatch would pay).
    ``price(c, m)`` is the span-matrix service price of model ``m`` warm
    on chip ``c``.

    With ``len(models) ** len(chips)`` assignments within the exhaustive
    budget the solve is exact (fleet-sized instances — a handful of chips,
    a few models — always are); larger instances fall back to a greedy
    regret pass: chips in index order take the model with the largest
    weighted saving over its current best cover.  Deterministic either
    way: ties break on enumeration order / model order.
    """
    chips = list(chips)
    models = list(models)
    if not chips or not models:
        return {}

    def cost_of(assignment: Sequence[str]) -> float:
        total = 0.0
        for model in models:
            best = min(
                (price(chip, assigned_model)
                 for chip, assigned_model in zip(chips, assignment)
                 if assigned_model == model),
                default=None,
            )
            total += weights.get(model, 0.0) * (miss(model) if best is None
                                                else best)
        return total

    if len(models) ** len(chips) <= _PLACEMENT_EXHAUSTIVE_LIMIT:
        best_assignment = min(
            itertools.product(models, repeat=len(chips)), key=cost_of,
        )
        return dict(zip(chips, best_assignment))

    # greedy regret: every chip starts on its cheapest model, then chips
    # switch (in index order) to whichever uncovered model saves the most
    assignment = {chip: min(models, key=lambda m: (price(chip, m), m))
                  for chip in chips}
    for chip in chips:
        covered = set(assignment.values())
        uncovered = [m for m in models if m not in covered]
        if not uncovered:
            break
        current = list(assignment.items())

        def regret(model: str) -> float:
            saving = weights.get(model, 0.0) * (miss(model) - price(chip, model))
            return saving

        candidate = max(uncovered, key=lambda m: (regret(m), m))
        if regret(candidate) > 0 and sum(
            1 for c, m in current if m == assignment[chip]
        ) > 1:
            assignment[chip] = candidate
    return assignment


class Controller:
    """Per-run control-plane state: health views, windows and counters.

    One controller is created per :meth:`ServingSimulator.run` when the
    configured :class:`ControlConfig` is active; the simulator feeds it
    observations (dispatches, completions, per-request outcomes) and calls
    its decision methods at every ``CONTROL`` tick.  The controller owns
    the quarantine (``blocked``) and decommission (``retired``) sets the
    dispatch path consults, plus every counter the report's ``control``
    block surfaces.  It consumes no randomness.
    """

    def __init__(self, config: ControlConfig) -> None:
        self.config = config
        self.blocked: Set[int] = set()
        self.retired: Set[int] = set()
        self.health: Dict[int, _ChipHealth] = {}
        #: end-to-end latencies (ns) of recent completions — hedge budget
        self.lat_window: Deque[float] = deque(maxlen=config.window)
        #: 0/1 SLO outcomes of recent completions — autoscale signal
        self.slo_window: Deque[int] = deque(maxlen=config.window)
        #: models of recent dispatches — re-placement traffic weights
        self.model_window: Deque[str] = deque(maxlen=config.window)
        #: batch sizes of recent dispatches per model — re-placement batch
        self.batch_counts: Dict[str, Dict[int, int]] = {}
        self.util_ema: Optional[float] = None
        self.last_scale_ns: Optional[float] = None
        # --- report counters -------------------------------------------
        self.ticks = 0
        self.detections = 0
        self.true_detections = 0
        self.false_detections = 0
        self.quarantines = 0
        self.readmissions = 0
        self.hedges = 0
        self.hedges_won = 0
        self.hedges_wasted = 0
        self.hedges_cancelled = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.replacements = 0
        self.replacement_ns = 0.0

    # --- observation hooks (called by the simulator) -------------------
    def health_for(self, index: int) -> _ChipHealth:
        return self.health.setdefault(index, _ChipHealth())

    def available(self, worker: ChipWorker) -> bool:
        """Whether the controller lets this chip take dispatches."""
        return (worker.index not in self.blocked
                and worker.index not in self.retired)

    def note_dispatch(self, index: int, model: str, batch: int,
                      completion_ns: float, epoch: int = 0) -> None:
        """A batch was dispatched: remember the completion we expect."""
        health = self.health_for(index)
        health.expected_ns = completion_ns
        health.expected_epoch = epoch
        self.model_window.append(model)
        per_model = self.batch_counts.setdefault(model, {})
        per_model[batch] = per_model.get(batch, 0) + 1

    def note_completion(self, index: int, ratio: float) -> None:
        """The expected completion arrived; fold its service ratio in."""
        health = self.health_for(index)
        health.expected_ns = None
        health.ratio_ema = (
            ratio if health.ratio_ema is None
            else _HEALTH_ALPHA * ratio + (1.0 - _HEALTH_ALPHA) * health.ratio_ema
        )

    def note_request(self, latency_ns: float,
                     slo_ok: Optional[bool]) -> None:
        """One request completed end to end (hedge winners count once)."""
        self.lat_window.append(latency_ns)
        if slo_ok is not None:
            self.slo_window.append(1 if slo_ok else 0)

    # --- decisions (called at every CONTROL tick) ----------------------
    def _quarantine(self, index: int, now: float, genuine: bool) -> None:
        health = self.health_for(index)
        self.detections += 1
        if genuine:
            self.true_detections += 1
        else:
            self.false_detections += 1
        self.quarantines += 1
        self.blocked.add(index)
        # flap damping: each re-quarantine of the same chip doubles its
        # probation, so a flapping chip is readmitted ever more cautiously
        probation_ns = self.config.probation_us * 1e3 * (2.0 ** health.flaps)
        health.quarantined_until = now + probation_ns
        health.flaps += 1
        health.strikes = 0
        health.expected_ns = None

    def assess(self, now: float, workers: Sequence[ChipWorker]) -> bool:
        """Detection / quarantine / re-admission pass; True when changed.

        Ground truth (``worker.up``, ``latency_factor``) is read *only* to
        score a detection as true/false positive — the detection signals
        themselves are the controller's own observations.
        """
        changed = False
        ratios = sorted(
            health.ratio_ema
            for index, health in self.health.items()
            if health.ratio_ema is not None and index not in self.retired
        )
        median_ratio = percentile(ratios, 50) if ratios else None
        for worker in workers:
            index = worker.index
            if index in self.retired:
                continue
            health = self.health_for(index)
            if index in self.blocked:
                # re-admission probation: the chip must be up again and
                # have served its (flap-damped) quarantine
                if (health.quarantined_until is not None
                        and now >= health.quarantined_until and worker.up):
                    self.blocked.discard(index)
                    health.quarantined_until = None
                    health.ratio_ema = None  # fresh start on probation
                    health.strikes = 0
                    self.readmissions += 1
                    changed = True
                continue
            # stalled completion: the batch we dispatched should have
            # finished by now and no completion was observed — the chip
            # died mid-batch (detected before any scripted recovery)
            if health.expected_ns is not None and now > health.expected_ns:
                genuine = (not worker.up
                           or worker.epoch != health.expected_epoch)
                self._quarantine(index, now, genuine=genuine)
                changed = True
                continue
            # straggler suspicion: service ratio EMA far above the fleet
            # median, for quarantine_after consecutive ticks
            if (median_ratio is not None and median_ratio > 0
                    and health.ratio_ema is not None
                    and health.ratio_ema
                    > self.config.straggler_ratio * median_ratio):
                health.strikes += 1
                if health.strikes >= self.config.quarantine_after:
                    genuine = (worker.latency_factor > 1.0
                               or worker.dram_factor > 1.0 or not worker.up)
                    self._quarantine(index, now, genuine=genuine)
                    changed = True
            else:
                health.strikes = 0
        return changed

    def update_utilisation(self, now: float,
                           workers: Sequence[ChipWorker]) -> None:
        """Fold one busy-fraction sample of the available chips in."""
        available = [w for w in workers if self.available(w) and w.up]
        if not available:
            return
        busy = sum(1 for w in available if w.busy_until_ns > now)
        sample = busy / len(available)
        self.util_ema = (
            sample if self.util_ema is None
            else _HEALTH_ALPHA * sample + (1.0 - _HEALTH_ALPHA) * self.util_ema
        )

    def hedge_budget_ns(self) -> Optional[float]:
        """Current hedge wait budget, or ``None`` while hedging is unarmed."""
        if (self.config.hedge_after_pct <= 0
                or len(self.lat_window) < self.config.hedge_min_samples):
            return None
        return percentile(sorted(self.lat_window), self.config.hedge_after_pct)

    def attainment(self) -> Optional[float]:
        """Windowed SLO attainment (``None`` without samples)."""
        if not self.slo_window:
            return None
        return sum(self.slo_window) / len(self.slo_window)

    def scale_decision(self, now: float, workers: Sequence[ChipWorker],
                       queued: int) -> int:
        """+1 to grow, -1 to shrink, 0 to hold (bounds + cooldown aware)."""
        cfg = self.config
        if not cfg.autoscale:
            return 0
        active = [w for w in workers if w.index not in self.retired]
        available = [w for w in active if w.up and w.index not in self.blocked]
        cooled = (self.last_scale_ns is None
                  or now - self.last_scale_ns >= cfg.cooldown_us * 1e3)
        if not cooled:
            return 0
        if len(active) < cfg.max_chips:
            if queued > 0 and not available:
                return +1  # nothing can serve: emergency capacity
            attainment = self.attainment()
            if attainment is not None and attainment < cfg.scale_up_below \
                    and queued > 0:
                return +1
            if available and queued / len(available) > cfg.scale_up_depth:
                return +1
        if len(active) > cfg.min_chips and queued == 0 and available:
            attainment = self.attainment()
            if (self.util_ema is not None
                    and self.util_ema < cfg.scale_down_util
                    and (attainment is None
                         or attainment >= cfg.scale_up_below)):
                return -1
        return 0

    def model_weights(self) -> Dict[str, float]:
        """Observed traffic mix over the dispatch window (re-placement)."""
        weights: Dict[str, float] = {}
        for model in self.model_window:
            weights[model] = weights.get(model, 0.0) + 1.0
        return weights

    def preferred_batch(self, model: str, fallback: int) -> int:
        """The batch size this model is most often dispatched at."""
        counts = self.batch_counts.get(model)
        if not counts:
            return fallback
        return max(sorted(counts), key=lambda b: counts[b])

    # --- report --------------------------------------------------------
    def as_dict(self, workers: Sequence[ChipWorker],
                base_chips: int) -> Dict[str, object]:
        """The report's ``control`` block (all quantities deterministic)."""
        return {
            "interval_us": self.config.interval_us,
            "ticks": self.ticks,
            "detections": self.detections,
            "true_detections": self.true_detections,
            "false_detections": self.false_detections,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "hedges_wasted": self.hedges_wasted,
            "hedges_cancelled": self.hedges_cancelled,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "base_chips": base_chips,
            "final_chips": len(workers) - len(self.retired),
            "replacements": self.replacements,
            "replacement_ms": self.replacement_ns * 1e-6,
        }
