"""Fault injection and fault-tolerance configuration for the serving layer.

Real fleets are not immortal: chips fail and come back, individual chips
straggle (thermal throttling, shared-resource contention), and a chip's
external DRAM can drop to a degraded configuration.  This module is the
declarative surface for injecting those events into a serving run — and the
configuration knobs for the machinery that survives them (per-request
timeout, capped retry with deterministic exponential backoff, admission
control / load shedding, SLO-driven graceful degradation).

Two kinds of specification, both seed-deterministic:

* **Scheduled** — a concrete :class:`FaultEvent` pins one event to one
  simulated instant (microseconds after the first arrival):
  ``chip_fail@500:chip=0,until=1500``, ``straggler@200:chip=1,factor=2.5,
  until=900``, ``dram_degrade@100:chip=0,factor=2``.
* **Stochastic** — a ``chaos`` event expands into a schedule of chip
  failures drawn from its own seeded PCG64 stream
  (``chaos@0:seed=7,count=3,mtbf_us=3000,mttr_us=500``): exponential gaps
  with mean ``mtbf_us``, exponential outages with mean ``mttr_us``, chips
  uniform (or pinned with ``chip=``).  The stream is pre-drawn at
  materialisation, so the simulator itself still consumes no randomness and
  a fixed seed replays to a bit-identical :class:`~repro.serve.simulator.
  ServingReport`.

The CLI's repeatable ``repro serve --inject SPEC`` flag routes through
:func:`parse_inject`; :func:`materialize` turns the event list into the flat
``(at_us, action, chip, factor)`` schedule the simulator replays.  The
``REPRO_SERVE_FAULTS`` environment variable (default on; ``0`` disables)
gates injection globally, so a scenario can be A/B-ed against its fault-free
twin without editing the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import envflags

#: recognised ``--inject`` event kinds
FAULT_KINDS = ("chip_fail", "chip_recover", "straggler", "dram_degrade", "chaos")

#: materialised schedule actions the simulator applies
ACTION_FAIL, ACTION_RECOVER, ACTION_STRAGGLE, ACTION_DRAM = (
    "fail", "recover", "straggle", "dram",
)


def faults_enabled() -> bool:
    """Whether fault injection is globally enabled.

    Controlled by the ``REPRO_SERVE_FAULTS`` environment variable (default
    on; ``0`` or the empty string disables it).  Disabling drops every
    injected event while keeping the fault-tolerance knobs (timeout, retry,
    shedding) active — the fault-free twin of a scenario.
    """
    return envflags.serve_faults_enabled()


@dataclass(frozen=True)
class FaultEvent:
    """One declarative fault event (times in µs after the first arrival).

    ``chip`` is a worker index into the fleet (``-1`` means "drawn
    uniformly" and is only meaningful for ``chaos``).  ``until_us`` closes
    a window: a failed chip recovers, a straggler returns to full speed, a
    degraded DRAM is restored; without it the condition lasts for the rest
    of the run.  ``factor`` is the straggler latency multiplier or the DRAM
    timing multiplier (> 1 slows the chip down).
    """

    kind: str
    at_us: float
    chip: int = -1
    until_us: Optional[float] = None
    factor: float = 1.0
    #: chaos only: stream seed, number of failures, mean time between
    #: failures and mean time to repair (µs)
    seed: int = 0
    count: int = 0
    mtbf_us: float = 0.0
    mttr_us: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of: "
                + ", ".join(FAULT_KINDS)
            )
        if self.at_us < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at_us}")
        if self.until_us is not None and self.until_us <= self.at_us:
            raise ValueError(
                f"fault window must end after it starts ({self.at_us} .. {self.until_us})"
            )
        if self.kind in ("straggler", "dram_degrade") and self.factor <= 0:
            raise ValueError(f"fault factor must be positive, got {self.factor}")
        if self.kind == "chaos":
            if self.count <= 0:
                raise ValueError("chaos needs count > 0 failures to draw")
            if self.mtbf_us <= 0 or self.mttr_us <= 0:
                raise ValueError("chaos needs positive mtbf_us and mttr_us")
        elif self.chip < 0:
            raise ValueError(f"{self.kind} needs an explicit chip=<index>")


_INT_FIELDS = ("chip", "seed", "count")
_FLOAT_FIELDS = ("until", "factor", "mtbf_us", "mttr_us")


def parse_inject(spec: str) -> FaultEvent:
    """Parse one ``--inject`` spec string into a :class:`FaultEvent`.

    Format: ``KIND@AT_US[:key=value,...]`` — e.g.
    ``chip_fail@500:chip=0,until=1500`` or
    ``chaos@0:seed=7,count=3,mtbf_us=3000,mttr_us=500``.  Raises
    ``ValueError`` (the CLI's friendly exit-2 path) for anything malformed.
    """
    head, _, tail = spec.partition(":")
    kind, sep, at = head.partition("@")
    kind = kind.strip()
    if not sep or not kind:
        raise ValueError(f"bad --inject {spec!r}; expected KIND@AT_US[:key=value,...]")
    try:
        at_us = float(at)
    except ValueError:
        raise ValueError(f"bad --inject {spec!r}; fault time {at!r} is not a number") from None
    kwargs: Dict[str, object] = {}
    if tail:
        for part in tail.split(","):
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(f"bad --inject {spec!r}; expected key=value, got {part!r}")
            try:
                if key in _INT_FIELDS:
                    kwargs[key] = int(value)
                elif key in _FLOAT_FIELDS:
                    kwargs["until_us" if key == "until" else key] = float(value)
                else:
                    raise KeyError(key)
            except KeyError:
                known = ", ".join(_INT_FIELDS + _FLOAT_FIELDS)
                raise ValueError(
                    f"bad --inject {spec!r}; unknown key {key!r} (known: {known})"
                ) from None
            except ValueError:
                raise ValueError(f"bad --inject {spec!r}; {key}={value!r} is not a number") from None
    try:
        return FaultEvent(kind=kind, at_us=at_us, **kwargs)
    except TypeError:
        raise ValueError(f"bad --inject {spec!r}") from None


def validate_fault_targets(events: Sequence[FaultEvent], num_chips: int) -> None:
    """Check every explicit fault chip index against the fleet size.

    The CLI calls this right after parsing ``--inject`` specs — before plan
    compilation, traffic generation or simulator construction — so a typo'd
    chip index exits with the friendly message immediately instead of after
    seconds of warmup.  Unlike :func:`materialize` this runs regardless of
    the ``REPRO_SERVE_FAULTS`` gate: a spec naming a chip the fleet does not
    have is wrong input even when injection is disabled.  Chaos events with
    ``chip=-1`` (drawn uniformly) are always in range by construction.
    """
    for event in events:
        if event.chip >= num_chips:
            raise ValueError(
                f"--inject {event.kind}@{event.at_us:g} targets chip "
                f"{event.chip}, out of range for a {num_chips}-chip fleet "
                f"(valid indices 0..{num_chips - 1})"
            )


def materialize(
    events: Sequence[FaultEvent], num_chips: int
) -> List[Tuple[float, str, int, float]]:
    """Flatten fault events into the concrete schedule a simulator replays.

    Chaos events expand into chip failures drawn from their own seeded
    stream; window ends (``until_us``) become explicit recover/restore
    entries.  Returns ``(at_us, action, chip, factor)`` tuples sorted by
    ``(at_us, chip)`` — the same deterministic total order the event heap
    keeps.  Raises ``ValueError`` for chip indices outside the fleet.
    """
    schedule: List[Tuple[float, str, int, float]] = []

    def add(at_us: float, action: str, chip: int, factor: float = 1.0) -> None:
        if not 0 <= chip < num_chips:
            raise ValueError(
                f"fault chip index {chip} out of range for a {num_chips}-chip fleet"
            )
        schedule.append((at_us, action, chip, factor))

    for event in events:
        if event.kind == "chaos":
            rng = np.random.default_rng(event.seed)
            t = event.at_us
            for _ in range(event.count):
                t += float(rng.exponential(event.mtbf_us))
                chip = event.chip if event.chip >= 0 else int(rng.integers(num_chips))
                outage = float(rng.exponential(event.mttr_us))
                add(t, ACTION_FAIL, chip)
                add(t + outage, ACTION_RECOVER, chip)
        elif event.kind == "chip_fail":
            add(event.at_us, ACTION_FAIL, event.chip)
            if event.until_us is not None:
                add(event.until_us, ACTION_RECOVER, event.chip)
        elif event.kind == "chip_recover":
            add(event.at_us, ACTION_RECOVER, event.chip)
        elif event.kind == "straggler":
            add(event.at_us, ACTION_STRAGGLE, event.chip, event.factor)
            if event.until_us is not None:
                add(event.until_us, ACTION_STRAGGLE, event.chip, 1.0)
        elif event.kind == "dram_degrade":
            add(event.at_us, ACTION_DRAM, event.chip, event.factor)
            if event.until_us is not None:
                add(event.until_us, ACTION_DRAM, event.chip, 1.0)
    schedule.sort(key=lambda entry: (entry[0], entry[2]))
    return schedule


@dataclass(frozen=True)
class FaultTolerance:
    """Fault-tolerance knobs of one serving run (all off by default).

    * ``timeout_us`` — a queued request that has waited this long is
      abandoned (and retried if attempts remain); 0 disables timeouts.
      The timeout clock restarts at every retry attempt; dispatch cancels
      it (the chip finishes what it starts — in-flight loss comes from
      chip failures, not timeouts).
    * ``max_retries`` — additional attempts a request lost to a chip
      failure or timeout may make; 0 means failures are final.
    * ``retry_backoff_us`` — base of the deterministic exponential backoff:
      attempt ``k`` re-arrives ``retry_backoff_us * 2**k`` µs after its
      failure (no jitter — determinism is the contract here).
    * ``shed_queue_depth`` — admission control: an arrival finding this
      many requests already queued is shed (rejected); 0 disables.
    * ``shed_wait_us`` — an arrival whose estimated queueing wait exceeds
      this budget is shed; 0 disables.
    * ``degrade_below`` — graceful degradation: when a model's running SLO
      attainment falls below this fraction, its dispatches bypass the
      batching hold and use the latency-optimal cached plan (the smallest /
      fastest batch) until attainment recovers; 0 disables.  Only
      meaningful for models with an SLO target.
    * ``retry_priority`` — retry-aware queue ordering: a retry on its
      **final** attempt re-enters its queue ahead of fresh arrivals (and
      its queue is preferred by the policy's ``order_queues``), so the
      request is served before its last timeout budget burns down instead
      of aging behind new offered load.  Off by default — plain FIFO retry
      ordering, exactly the pre-control behaviour.  Only meaningful with
      ``max_retries > 0``.
    """

    timeout_us: float = 0.0
    max_retries: int = 0
    retry_backoff_us: float = 50.0
    shed_queue_depth: int = 0
    shed_wait_us: float = 0.0
    degrade_below: float = 0.0
    retry_priority: bool = False

    def __post_init__(self) -> None:
        if self.timeout_us < 0:
            raise ValueError(f"timeout_us must be non-negative, got {self.timeout_us}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.retry_backoff_us < 0:
            raise ValueError(
                f"retry_backoff_us must be non-negative, got {self.retry_backoff_us}"
            )
        if self.shed_queue_depth < 0:
            raise ValueError(
                f"shed_queue_depth must be non-negative, got {self.shed_queue_depth}"
            )
        if self.shed_wait_us < 0:
            raise ValueError(f"shed_wait_us must be non-negative, got {self.shed_wait_us}")
        if not 0.0 <= self.degrade_below <= 1.0:
            raise ValueError(
                f"degrade_below must be a fraction in [0, 1], got {self.degrade_below}"
            )

    @property
    def active(self) -> bool:
        """Whether any fault-tolerance mechanism is switched on."""
        return bool(
            self.timeout_us > 0
            or self.max_retries > 0
            or self.shed_queue_depth > 0
            or self.shed_wait_us > 0
            or self.degrade_below > 0
        )

    def backoff_ns(self, attempt: int) -> float:
        """Deterministic exponential backoff before retry attempt ``attempt``."""
        return self.retry_backoff_us * 1e3 * (2.0 ** attempt)
