"""Traffic-driven serving subsystem: plans, fleets, scheduling, simulation.

The paper evaluates single-inference latency and EDP of compiled partition
groups; this package turns those compiled plans into what such metrics are a
proxy for — sustained throughput and tail latency under real request
streams.  Four pieces, all deterministic for a fixed seed:

* :class:`PlanCache` — LRU cache of :class:`CompiledPlan` entries keyed by
  ``(model, chip, dram, batch, mode, optimizer)``, compiled through the
  shared registry / :mod:`repro.search` / span-matrix stack;
* :class:`Fleet` — homogeneous or heterogeneous (S/M/L) chip fleets with
  per-chip occupancy counters and a ``loaded_plan`` slot per chip — plan
  switches pay the incoming plan's weight-replacement cost when
  :func:`switch_cost_enabled` (the ``REPRO_SERVE_SWITCH_COST`` gate);
* :mod:`~repro.serve.scheduler` — FIFO / least-loaded / latency-aware /
  fair (deficit round-robin across model queues) chip policies plus
  :class:`DynamicBatcher`, which picks batch sizes from the span-matrix
  per-batch latency curves;
* :class:`ServingSimulator` — the discrete-event loop producing a
  :class:`ServingReport` (throughput, p50/p95/p99 latency, queue depths,
  per-chip utilisation and energy, per-model SLO attainment, plan-switch
  counts).  Open-loop streams are pregenerated; :class:`ClosedLoopTraffic`
  clients instead issue each follow-up request when the previous one
  completes, with arrivals injected into the live event loop;
* :mod:`~repro.serve.faults` — seed-deterministic fault injection
  (:class:`FaultEvent`: chip failure/recovery, stragglers, degraded DRAM,
  stochastic ``chaos`` schedules) and the :class:`FaultTolerance` knobs
  that survive them: request re-queue on chip death, per-request timeout +
  capped retry with deterministic backoff, admission control / load
  shedding, and SLO-driven graceful degradation.  Fault-free runs stay
  bit-identical to the pre-fault simulator.
* :mod:`~repro.serve.control` — the self-healing control plane: a
  :class:`Controller` (configured by :class:`ControlConfig`) runs on a
  fixed control tick inside the simulator's deterministic event order and
  closes the loop from observed health signals to actions — quarantine of
  stalled/straggling chips with flap-damped re-admission, hedged requests
  past a latency-window percentile budget, an SLO-driven autoscaler whose
  cold chips pay the plan-switch weight-replacement cost, and plan
  re-placement across survivors via a small assignment solve.  Detections
  are scored against the injected fault ground truth in the report's
  ``control`` block.  Controller-off runs stay bit-identical.
* :mod:`~repro.serve.telemetry` — the passive observability layer
  (:class:`TelemetryConfig`): a :class:`Telemetry` registry the existing
  stat surfaces plug into, a per-window metrics timeline sampled lazily
  at window boundaries, constant-memory percentile sketches
  (:class:`P2Quantile`, :class:`Log2Histogram`) with documented error
  bounds vs the exact nearest-rank percentile, and every-K-th request
  lifecycle tracing exported as Chrome trace-event JSON
  (:class:`RequestTracer`).  Telemetry is a pure observer — telemetry-off
  runs stay bit-identical, and the ``REPRO_SERVE_TELEMETRY=0`` gate drops
  it wholesale.
* :mod:`~repro.serve.service` — the live observatory: an asyncio REST +
  WebSocket service (stdlib only) that runs scenarios on worker threads,
  streams each timeline window the moment it is provably final, exposes
  the telemetry hub as Prometheus text exposition at ``/metrics``, and
  accepts mid-run commands (fault injection, policy swap, autoscale
  bounds) through a thread-safe :class:`CommandQueue` drained inside the
  simulator's deterministic event order.  Service-off runs stay
  bit-identical — streaming only changes *when* windows render, never
  what they contain.

The CLI's ``repro serve`` and ``repro observe`` subcommands route here.
"""

from repro.serve.control import COLD_PLAN, ControlConfig, Controller, place_plans
from repro.serve.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultTolerance,
    faults_enabled,
    materialize,
    parse_inject,
    validate_fault_targets,
)
from repro.serve.fleet import (
    ChipWorker,
    Fleet,
    fleet_capacity_rps,
    plan_for,
    service_latency_ns,
    switch_cost_enabled,
)
from repro.serve.plans import (
    CompiledPlan,
    PlanCache,
    PlanCacheStats,
    PlanKey,
    degraded_dram,
)
from repro.serve.scheduler import (
    POLICIES,
    DynamicBatcher,
    FairPolicy,
    FifoPolicy,
    LatencyAwarePolicy,
    LeastLoadedPolicy,
    SchedulingPolicy,
    make_policy,
    validate_policy,
)
from repro.serve.simulator import CommandQueue, ServingReport, ServingSimulator
from repro.serve.telemetry import (
    Log2Histogram,
    P2Quantile,
    RequestTracer,
    StreamingQuantiles,
    Telemetry,
    TelemetryConfig,
    TelemetrySession,
    TimelineAccumulator,
    telemetry_enabled,
)
from repro.serve.traffic import (
    TRAFFIC_GENERATORS,
    BurstyTraffic,
    ClosedLoopSession,
    ClosedLoopTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    Request,
    TraceTraffic,
    TrafficGenerator,
    load_trace,
    retry_request,
    save_trace,
    validate_traffic,
)

__all__ = [
    "BurstyTraffic",
    "ChipWorker",
    "COLD_PLAN",
    "ClosedLoopSession",
    "ClosedLoopTraffic",
    "CommandQueue",
    "CompiledPlan",
    "ControlConfig",
    "Controller",
    "DiurnalTraffic",
    "DynamicBatcher",
    "FAULT_KINDS",
    "FairPolicy",
    "FaultEvent",
    "FaultTolerance",
    "FifoPolicy",
    "Fleet",
    "LatencyAwarePolicy",
    "LeastLoadedPolicy",
    "Log2Histogram",
    "P2Quantile",
    "POLICIES",
    "PlanCache",
    "PlanCacheStats",
    "PlanKey",
    "PoissonTraffic",
    "Request",
    "RequestTracer",
    "SchedulingPolicy",
    "ServingReport",
    "ServingSimulator",
    "StreamingQuantiles",
    "TRAFFIC_GENERATORS",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySession",
    "TimelineAccumulator",
    "TraceTraffic",
    "TrafficGenerator",
    "degraded_dram",
    "faults_enabled",
    "fleet_capacity_rps",
    "load_trace",
    "make_policy",
    "materialize",
    "parse_inject",
    "place_plans",
    "plan_for",
    "retry_request",
    "save_trace",
    "service_latency_ns",
    "switch_cost_enabled",
    "telemetry_enabled",
    "validate_fault_targets",
    "validate_policy",
    "validate_traffic",
]
