"""Scenario jobs and the observatory that runs them.

The :class:`Observatory` is the service's single source of truth: it owns
every submitted :class:`ScenarioJob`, the :class:`BroadcastHub`, and the
bridge between each scenario's worker thread and the asyncio loop.

Threading model — the one rule everything else follows:

* the **simulation** runs on a per-job daemon thread (``simulator.run``
  is pure CPU; the loop stays responsive);
* the simulator's stream sink hops every message onto the loop with
  ``call_soon_threadsafe`` — from one producer thread that is FIFO, so
  windows arrive on the loop in simulation order;
* all job/hub state is therefore **loop-thread-only** after submission:
  routes and WebSocket handlers read it without locks.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import traceback
from typing import Dict, List, Optional

from repro.serve.simulator import CommandQueue
from repro.serve.service.broadcast import BroadcastHub, Subscription
from repro.serve.service.scenario import (
    ScenarioSpec,
    build_scenario,
    validate_spec,
)

#: job lifecycle states
PENDING, RUNNING, COMPLETED, FAILED = (
    "pending", "running", "completed", "failed")


class ScenarioJob:
    """One submitted scenario: spec, live telemetry, and its outcome."""

    def __init__(self, job_id: str, spec: ScenarioSpec,
                 raw_spec: Dict[str, object]) -> None:
        self.job_id = job_id
        self.spec = spec
        self.raw_spec = raw_spec
        self.state = PENDING
        #: streamed timeline rows, in window order (the rolling timeline)
        self.windows: List[Dict[str, object]] = []
        #: fault / command events, in simulation order
        self.events: List[Dict[str, object]] = []
        #: latest mid-run hub snapshot (then the final one at completion)
        self.hub_snapshot: Dict[str, object] = {}
        #: final report dict (present once state == completed)
        self.report: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        #: mid-run control commands enqueue here; the simulator drains
        self.commands = CommandQueue()
        self.done = asyncio.Event()
        self.thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """The poll endpoint's view of this job."""
        status: Dict[str, object] = {
            "id": self.job_id,
            "state": self.state,
            "windows": len(self.windows),
            "events": len(self.events),
            "models": list(self.spec.models),
            "fleet": self.spec.fleet_spec,
            "traffic": self.spec.traffic_kind,
        }
        if self.error is not None:
            status["error"] = self.error
        return status

    def backlog(self) -> List[Dict[str, object]]:
        """Replay for a late subscriber: everything published so far.

        A subscriber that connects mid-run (or after the run) receives the
        same message sequence a from-the-start subscriber saw — windows
        first, then events, then the terminal message if the job is done.
        """
        messages = [{"type": "window", "job": self.job_id, "data": row}
                    for row in self.windows]
        messages.extend({"type": "event", "job": self.job_id, "data": event}
                        for event in self.events)
        if self.state == COMPLETED:
            messages.append({"type": "report", "job": self.job_id,
                             "data": self.report})
        elif self.state == FAILED:
            messages.append({"type": "error", "job": self.job_id,
                             "data": {"error": self.error}})
        return messages


class Observatory:
    """All live service state: jobs, broadcast hub, thread bridging."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None,
                 queue_maxsize: int = 1024) -> None:
        self.loop = loop or asyncio.get_event_loop()
        self.hub = BroadcastHub(maxsize=queue_maxsize)
        self.jobs: Dict[str, ScenarioJob] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def submit(self, raw_spec: Dict[str, object]) -> ScenarioJob:
        """Validate and launch one scenario (raises ``ValueError`` on a
        bad spec — before any thread starts)."""
        spec = validate_spec(raw_spec)
        job = ScenarioJob(f"s{next(self._ids)}", spec, dict(raw_spec))
        self.jobs[job.job_id] = job
        thread = threading.Thread(
            target=self._worker, args=(job,),
            name=f"scenario-{job.job_id}", daemon=True)
        job.thread = thread
        thread.start()
        return job

    def get(self, job_id: str) -> Optional[ScenarioJob]:
        return self.jobs.get(job_id)

    def command(self, job_id: str, command: Dict[str, object]) -> bool:
        """Enqueue a mid-run command; False if the job is already done."""
        job = self.jobs[job_id]
        if job.state in (COMPLETED, FAILED):
            return False
        job.commands.put(command)
        return True

    def subscribe(self, job_id: str) -> Subscription:
        """Subscribe to a job's stream, with full backlog replay."""
        job = self.jobs[job_id]
        subscription = self.hub.subscribe(job_id)
        for message in job.backlog():
            subscription.deliver(message)
        if job.state in (COMPLETED, FAILED):
            subscription.deliver(None)
        return subscription

    def service_stats(self) -> Dict[str, object]:
        """Observatory-level gauges for /metrics."""
        states = {PENDING: 0, RUNNING: 0, COMPLETED: 0, FAILED: 0}
        for job in self.jobs.values():
            states[job.state] += 1
        stats: Dict[str, object] = {
            f"scenarios_{state}": count for state, count in states.items()}
        stats.update(self.hub.stats())
        return stats

    def hub_snapshots(self) -> Dict[str, Dict[str, object]]:
        """Per-job hub snapshots for /metrics (latest streamed, or the
        final report's telemetry block once a job completes)."""
        return {job_id: job.hub_snapshot
                for job_id, job in self.jobs.items() if job.hub_snapshot}

    # --- worker thread ------------------------------------------------
    def _worker(self, job: ScenarioJob) -> None:
        """Runs on the job's daemon thread; only touches job state via
        the loop."""
        call = self.loop.call_soon_threadsafe
        try:
            built = build_scenario(job.spec)
            built.simulator.stream_sink = (
                lambda kind, payload: call(self._on_stream, job, kind,
                                           payload))
            call(self._on_running, job)
            report = built.simulator.run(built.workload,
                                         traffic_info=built.traffic_info,
                                         commands=job.commands)
            call(self._on_done, job, report.as_dict())
        except Exception:  # a broken scenario must not kill the service
            call(self._on_failed, job, traceback.format_exc())

    # --- loop-thread callbacks ----------------------------------------
    def _on_running(self, job: ScenarioJob) -> None:
        job.state = RUNNING
        self.hub.publish(job.job_id, {"type": "status", "job": job.job_id,
                                      "data": job.status()})

    def _on_stream(self, job: ScenarioJob, kind: str,
                   payload: Dict[str, object]) -> None:
        if kind == "window":
            job.windows.append(payload)
            message = {"type": "window", "job": job.job_id, "data": payload}
        elif kind == "event":
            job.events.append(payload)
            message = {"type": "event", "job": job.job_id, "data": payload}
        elif kind == "hub":
            job.hub_snapshot = payload
            message = {"type": "hub", "job": job.job_id, "data": payload}
        else:
            return
        self.hub.publish(job.job_id, message)

    def _on_done(self, job: ScenarioJob, report: Dict[str, object]) -> None:
        job.state = COMPLETED
        job.report = report
        telemetry = report.get("telemetry")
        if telemetry:
            job.hub_snapshot = telemetry
        self.hub.publish(job.job_id, {"type": "report", "job": job.job_id,
                                      "data": report})
        self.hub.close_topic(job.job_id)
        job.done.set()

    def _on_failed(self, job: ScenarioJob, error: str) -> None:
        job.state = FAILED
        job.error = error
        self.hub.publish(job.job_id, {"type": "error", "job": job.job_id,
                                      "data": {"error": error}})
        self.hub.close_topic(job.job_id)
        job.done.set()
