"""Synchronous client helpers for the observatory.

Used by the ``repro observe --follow`` terminal follower and the hermetic
service tests: plain-socket HTTP requests and a minimal RFC 6455
WebSocket client (client frames masked, as the spec requires).  Blocking
sockets are the right shape here — the follower is a terminal loop, not a
server.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Dict, Iterator, Optional, Tuple

from repro.serve.service.http import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    encode_frame,
    websocket_accept,
)


def request_json(host: str, port: int, method: str, path: str,
                 payload: Optional[object] = None,
                 timeout: float = 30.0) -> Tuple[int, object]:
    """One HTTP request; returns ``(status, decoded-JSON-or-text)``."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(raw.decode("utf-8"))
        return response.status, raw.decode("utf-8")
    finally:
        connection.close()


class WebSocketClient:
    """Blocking WebSocket client for the observatory stream endpoint."""

    def __init__(self, host: str, port: int, path: str,
                 timeout: float = 30.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        #: bytes received but not yet consumed — the recv that completes
        #: the handshake headers may already carry the first frames (a
        #: server replaying a finished job's backlog sends them
        #: immediately), so nothing read can be discarded
        self._buffer = b""
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        handshake = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        )
        self.sock.sendall(handshake.encode("latin-1"))
        head = self._read_until(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise ConnectionError(f"upgrade refused: {status_line}")
        expected = websocket_accept(key)
        accept = ""
        for line in head.decode("latin-1").split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != expected:
            raise ConnectionError("bad Sec-WebSocket-Accept")

    # ------------------------------------------------------------------
    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("socket closed during handshake")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head

    def _read_exact(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("socket closed mid-frame")
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def _read_frame(self) -> Tuple[int, bytes]:
        first = self._read_exact(2)
        opcode = first[0] & 0x0F
        masked = bool(first[1] & 0x80)
        length = first[1] & 0x7F
        if length == 126:
            length = int.from_bytes(self._read_exact(2), "big")
        elif length == 127:
            length = int.from_bytes(self._read_exact(8), "big")
        key = self._read_exact(4) if masked else b""
        payload = self._read_exact(length) if length else b""
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return opcode, payload

    # ------------------------------------------------------------------
    def messages(self) -> Iterator[Dict[str, object]]:
        """Yield decoded JSON messages until the server closes."""
        while True:
            try:
                opcode, payload = self._read_frame()
            except ConnectionError:
                return
            if opcode == OP_CLOSE:
                try:
                    self.sock.sendall(
                        encode_frame(OP_CLOSE, payload, mask=True))
                except OSError:
                    pass
                return
            if opcode == OP_PING:
                self.sock.sendall(encode_frame(OP_PONG, payload, mask=True))
                continue
            if opcode != OP_TEXT:
                continue
            yield json.loads(payload.decode("utf-8"))

    def close(self) -> None:
        try:
            self.sock.sendall(encode_frame(OP_CLOSE, b"", mask=True))
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
