"""Minimal asyncio HTTP/1.1 + WebSocket plumbing (stdlib only).

Just enough protocol for the observatory: one-shot HTTP requests
(``Connection: close``) and RFC 6455 WebSocket upgrades for the telemetry
stream.  No external dependencies — the accept key is SHA-1 + base64 per
the spec, frames are parsed by hand, and the server only ever *sends*
unmasked frames (server-to-client frames must not be masked) while
requiring masked client frames.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: RFC 6455 §1.3 — the fixed GUID appended to the client key
WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 426: "Upgrade Required",
    500: "Internal Server Error",
}

#: request size guards (a telemetry service, not a general proxy)
MAX_HEADER_BYTES = 16384
MAX_BODY_BYTES = 1 << 20


class BadRequest(ValueError):
    """Malformed request — answered with a 400 and a closed connection."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from None


@dataclass
class Response:
    """One HTTP response (always ``Connection: close``)."""

    status: int = 200
    content_type: str = "application/json"
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body)

    @classmethod
    def text(cls, text: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8") -> "Response":
        return cls(status=status, content_type=content_type,
                   body=text.encode("utf-8"))

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message}, status=status)

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{key}: {value}" for key, value in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream (``None`` on a closed socket)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close before any request
        raise BadRequest("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise BadRequest("undecodable request head") from None
    request_line, _, header_text = text.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {request_line!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: Dict[str, str] = {}
    for line in header_text.strip().splitlines():
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise BadRequest("bad Content-Length")
    body = await reader.readexactly(length) if length else b""
    return Request(method=method, path=split.path, query=query,
                   headers=headers, body=body)


# ----------------------------------------------------------------------
# WebSocket framing (RFC 6455)
# ----------------------------------------------------------------------
def websocket_accept(key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a client ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + WS_MAGIC).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def is_websocket_upgrade(request: Request) -> bool:
    connection = request.headers.get("connection", "").lower()
    return (request.headers.get("upgrade", "").lower() == "websocket"
            and "upgrade" in connection
            and "sec-websocket-key" in request.headers)


def websocket_handshake_response(request: Request) -> bytes:
    key = request.headers["sec-websocket-key"]
    lines = [
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {websocket_accept(key)}",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One final (FIN=1) frame; servers never mask, clients must."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += length.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += length.to_bytes(8, "big")
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def encode_text(message: str, mask: bool = False) -> bytes:
    return encode_frame(OP_TEXT, message.encode("utf-8"), mask=mask)


async def read_frame(reader: asyncio.StreamReader
                     ) -> Optional[Tuple[int, bytes]]:
    """Read one frame; ``None`` on a closed socket.  Fragmentation is not
    supported (the observatory protocol sends whole JSON texts)."""
    try:
        first = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    opcode = first[0] & 0x0F
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    try:
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        elif length == 127:
            length = int.from_bytes(await reader.readexactly(8), "big")
        if length > MAX_BODY_BYTES:
            return None
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
