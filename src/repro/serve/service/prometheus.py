"""Prometheus text exposition rendering of telemetry hub snapshots.

The ``/metrics`` endpoint turns the per-job ``Telemetry`` hub snapshots
(the same ``counters`` / ``gauges`` / ``histograms`` mapping the report's
``telemetry`` block carries) into the Prometheus text exposition format
(version 0.0.4): one ``# TYPE`` line per metric family, counter families
suffixed ``_total``, and each :class:`~repro.serve.telemetry.Log2Histogram`
exposed as a cumulative ``le``-bucketed classic histogram — bin *b* of
the log2 sketch covers ``[2^b, 2^(b+1))``, so its upper bound maps to
``le="2^(b+1)"`` exactly.

No external client library — the format is plain text and the writer
below emits nothing outside the spec's grammar (a test parses the output
back with a strict grammar check).
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Tuple

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: every metric this module emits lives under one namespace
PREFIX = "repro_serve"


def _name(*parts: str) -> str:
    """Join and sanitise into a legal Prometheus metric name."""
    joined = "_".join([PREFIX] + [part for part in parts if part])
    cleaned = _SANITIZE.sub("_", joined)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _label_value(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_label_value(value)}"'
                     for key, value in pairs.items())
    return "{" + inner + "}"


def _number(value: object) -> str:
    # repr keeps full float precision; integers stay integral
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Family:
    """One metric family: a ``# TYPE`` header plus its sample lines."""

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.samples: List[str] = []

    def add(self, labels: Mapping[str, str], value: object,
            suffix: str = "") -> None:
        self.samples.append(
            f"{self.name}{suffix}{_labels(labels)} {_number(value)}")

    def render(self) -> List[str]:
        return [f"# TYPE {self.name} {self.kind}"] + self.samples


def render_prometheus(
    jobs: Mapping[str, Mapping[str, object]],
    service: Mapping[str, object],
) -> str:
    """Render per-job hub snapshots + service totals as exposition text.

    ``jobs`` maps job id -> hub snapshot (``counters``/``gauges``/
    ``histograms``); ``service`` is a flat mapping of observatory-level
    gauges (scenario states, broadcast totals).  Families are emitted in
    sorted-name order so the output is deterministic.
    """
    families: Dict[Tuple[str, str], _Family] = {}

    def family(name: str, kind: str) -> _Family:
        key = (name, kind)
        existing = families.get(key)
        if existing is None:
            existing = families[key] = _Family(name, kind)
        return existing

    for key in sorted(service):
        family(_name("service", key), "gauge").add({}, service[key])

    for job_id in sorted(jobs):
        snapshot = jobs[job_id]
        base = {"job": str(job_id)}
        counters = snapshot.get("counters") or {}
        events = family(_name("events_total"), "counter")
        for counter_name in sorted(counters):
            events.add(dict(base, event=str(counter_name)),
                       counters[counter_name])
        gauges = snapshot.get("gauges") or {}
        gauge_family = family(_name("gauge"), "gauge")
        for source in sorted(gauges):
            block = gauges[source]
            if not isinstance(block, Mapping):
                continue
            for key in sorted(block):
                value = block[key]
                if not isinstance(value, (int, float)):
                    continue
                gauge_family.add(
                    dict(base, source=str(source), key=str(key)), value)
        histograms = snapshot.get("histograms") or {}
        for hist_name in sorted(histograms):
            block = histograms[hist_name]
            if not isinstance(block, Mapping):
                continue
            hist_family = family(_name(str(hist_name)), "histogram")
            bins = block.get("bins") or {}
            cumulative = 0
            for bin_index in sorted(bins, key=int):
                cumulative += int(bins[bin_index])
                upper = float(2 ** (int(bin_index) + 1))
                hist_family.add(dict(base, le=_number(upper)), cumulative,
                                suffix="_bucket")
            count = int(block.get("count", 0))
            hist_family.add(dict(base, le="+Inf"), count, suffix="_bucket")
            total = float(block.get("mean", 0.0)) * count
            hist_family.add(base, total, suffix="_sum")
            hist_family.add(base, count, suffix="_count")

    lines: List[str] = []
    for key in sorted(families):
        lines.extend(families[key].render())
    return "\n".join(lines) + "\n"
