"""Live serving observatory: asyncio REST + WebSocket telemetry service.

``repro.serve.service`` turns the serving simulator's passive telemetry
into a live surface, with zero new dependencies (stdlib ``asyncio`` and a
hand-rolled minimal HTTP/WebSocket layer):

* **scenarios in** — POST a JSON scenario spec (fleet, traffic, SLOs,
  faults, control plane) and it runs on a worker thread
  (:mod:`~repro.serve.service.scenario`,
  :mod:`~repro.serve.service.jobs`);
* **windows out** — the simulator streams each timeline window the
  moment it is provably final, fanned out to WebSocket subscribers with
  per-client bounded queues and slow-consumer drop counters
  (:mod:`~repro.serve.service.broadcast`);
* **state cached** — rolling timeline, fault/command events and hub
  snapshots are poll-able over REST, and ``/metrics`` renders the
  telemetry hub in Prometheus text exposition format
  (:mod:`~repro.serve.service.routes`,
  :mod:`~repro.serve.service.prometheus`);
* **control in** — POST mid-run commands (inject a fault, change the
  scheduling policy, set autoscale bounds) that enter the simulator's
  deterministic event order through a
  :class:`~repro.serve.simulator.CommandQueue`.

Start one with ``repro observe`` (or embed :class:`ServerThread` in
tests) and follow a run with ``repro observe --follow <id>``.
"""

from repro.serve.service.broadcast import BroadcastHub, Subscription
from repro.serve.service.client import WebSocketClient, request_json
from repro.serve.service.jobs import Observatory, ScenarioJob
from repro.serve.service.prometheus import render_prometheus
from repro.serve.service.routes import ObservatoryServer, ServerThread
from repro.serve.service.scenario import (
    BuiltScenario,
    ScenarioSpec,
    build_scenario,
    validate_spec,
)

__all__ = [
    "BroadcastHub",
    "BuiltScenario",
    "Observatory",
    "ObservatoryServer",
    "ScenarioJob",
    "ScenarioSpec",
    "ServerThread",
    "Subscription",
    "WebSocketClient",
    "build_scenario",
    "render_prometheus",
    "request_json",
    "validate_spec",
]
