"""Fan-out hub for live observatory telemetry.

One :class:`BroadcastHub` lives on the service's event loop.  Producers
(the scenario worker threads, via ``call_soon_threadsafe``) publish
messages onto per-job topics; each WebSocket subscriber owns a
:class:`Subscription` with a **bounded** queue.  A subscriber that cannot
keep up never blocks the producer or other subscribers — the overflowing
message is dropped and counted, exactly the back-pressure contract of the
simulator's own shed path.

Everything here is loop-thread-only (asyncio queues are not thread-safe);
cross-thread producers must hop onto the loop first.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional


class Subscription:
    """One subscriber's bounded view of a topic."""

    def __init__(self, topic: str, sub_id: int, maxsize: int) -> None:
        self.topic = topic
        self.sub_id = sub_id
        self.queue: "asyncio.Queue[Optional[dict]]" = asyncio.Queue(
            maxsize=maxsize)
        #: messages dropped because this subscriber's queue was full
        self.dropped = 0

    def deliver(self, message: Optional[dict]) -> None:
        """Enqueue without blocking; a full queue drops and counts."""
        try:
            self.queue.put_nowait(message)
        except asyncio.QueueFull:
            self.dropped += 1

    async def get(self) -> Optional[dict]:
        """Next message (``None`` is the hub's end-of-topic sentinel)."""
        return await self.queue.get()


class BroadcastHub:
    """Topic-keyed fan-out with per-subscriber bounded queues."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._topics: Dict[str, List[Subscription]] = {}
        self._ids = itertools.count(1)
        #: totals across the hub's lifetime (for /metrics)
        self.published = 0
        self.dropped = 0

    def subscribe(self, topic: str) -> Subscription:
        subscription = Subscription(topic, next(self._ids), self.maxsize)
        self._topics.setdefault(topic, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscribers = self._topics.get(subscription.topic)
        if not subscribers:
            return
        # the hub-level drop total must survive the subscriber
        self.dropped += subscription.dropped
        subscription.dropped = 0
        try:
            subscribers.remove(subscription)
        except ValueError:
            pass
        if not subscribers:
            del self._topics[subscription.topic]

    def publish(self, topic: str, message: dict) -> int:
        """Deliver to every subscriber of ``topic``; returns the fan-out."""
        subscribers = self._topics.get(topic)
        self.published += 1
        if not subscribers:
            return 0
        for subscription in subscribers:
            subscription.deliver(message)
        return len(subscribers)

    def close_topic(self, topic: str) -> None:
        """Send the end-of-topic sentinel to every subscriber."""
        for subscription in self._topics.get(topic, ()):
            subscription.deliver(None)

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        if topic is not None:
            return len(self._topics.get(topic, ()))
        return sum(len(subs) for subs in self._topics.values())

    def stats(self) -> Dict[str, int]:
        """Hub totals plus drops still pending on live subscribers."""
        live_dropped = sum(
            subscription.dropped
            for subscribers in self._topics.values()
            for subscription in subscribers
        )
        return {
            "published": self.published,
            "dropped": self.dropped + live_dropped,
            "subscribers": self.subscriber_count(),
        }
