"""REST + WebSocket routes of the live observatory.

Endpoints (all JSON unless noted)::

    GET  /healthz                       liveness probe
    GET  /scenarios                     list every job's status
    POST /scenarios                     submit a scenario spec -> 201 {id}
    GET  /scenarios/<id>                poll one job's status
    GET  /scenarios/<id>/timeline       rolling timeline (streamed rows)
    GET  /scenarios/<id>/events         fault / command events so far
    GET  /scenarios/<id>/report         final report (409 while running)
    POST /scenarios/<id>/commands       enqueue a mid-run command
    GET  /metrics                       Prometheus text exposition
    GET  /scenarios/<id>/stream         WebSocket: live window stream

The WebSocket stream speaks newline-less JSON text frames shaped
``{"type": "window" | "event" | "hub" | "status" | "report" | "error",
"job": "<id>", "data": {...}}``; the server closes the socket after the
terminal ``report``/``error`` message.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from typing import Optional, Tuple

from repro.serve.service import http
from repro.serve.service.jobs import COMPLETED, FAILED, Observatory
from repro.serve.service.prometheus import render_prometheus

#: commands a client may POST (validated here so a typo'd op is a 400,
#: not a silently-rejected entry in the report)
COMMAND_OPS = ("inject_fault", "set_policy", "autoscale_bounds")


def route_request(observatory: Observatory,
                  request: http.Request) -> http.Response:
    """Dispatch one plain-HTTP request (WebSocket upgrades are handled
    by the server before this is reached)."""
    path = request.path.rstrip("/") or "/"
    parts = [part for part in path.split("/") if part]

    if path == "/healthz":
        if request.method != "GET":
            return http.Response.error(405, "use GET")
        return http.Response.json({"ok": True})

    if path == "/metrics":
        if request.method != "GET":
            return http.Response.error(405, "use GET")
        text = render_prometheus(observatory.hub_snapshots(),
                                 observatory.service_stats())
        return http.Response.text(
            text, content_type="text/plain; version=0.0.4; charset=utf-8")

    if path == "/scenarios":
        if request.method == "GET":
            return http.Response.json(
                {"scenarios": [job.status()
                               for job in observatory.jobs.values()]})
        if request.method == "POST":
            spec = request.json()
            if not isinstance(spec, dict):
                return http.Response.error(400,
                                           "scenario spec must be an object")
            try:
                job = observatory.submit(spec)
            except (ValueError, KeyError) as exc:
                return http.Response.error(400, str(exc))
            return http.Response.json(job.status(), status=201)
        return http.Response.error(405, "use GET or POST")

    if parts and parts[0] == "scenarios" and len(parts) in (2, 3):
        job = observatory.get(parts[1])
        if job is None:
            return http.Response.error(404, f"no scenario {parts[1]!r}")
        tail = parts[2] if len(parts) == 3 else None
        if tail is None:
            if request.method != "GET":
                return http.Response.error(405, "use GET")
            return http.Response.json(job.status())
        if tail == "timeline":
            if request.method != "GET":
                return http.Response.error(405, "use GET")
            return http.Response.json({"id": job.job_id,
                                       "state": job.state,
                                       "timeline": job.windows})
        if tail == "events":
            if request.method != "GET":
                return http.Response.error(405, "use GET")
            return http.Response.json({"id": job.job_id,
                                       "events": job.events})
        if tail == "report":
            if request.method != "GET":
                return http.Response.error(405, "use GET")
            if job.state == FAILED:
                return http.Response.error(500, job.error or "failed")
            if job.state != COMPLETED:
                return http.Response.error(
                    409, f"scenario {job.job_id} is {job.state}; "
                         "the report exists once it completes")
            return http.Response.json({"id": job.job_id,
                                       "report": job.report})
        if tail == "commands":
            if request.method != "POST":
                return http.Response.error(405, "use POST")
            command = request.json()
            if not isinstance(command, dict):
                return http.Response.error(400, "command must be an object")
            op = command.get("op")
            if op not in COMMAND_OPS:
                return http.Response.error(
                    400, f"op must be one of: {', '.join(COMMAND_OPS)}")
            if not observatory.command(job.job_id, command):
                return http.Response.error(
                    409, f"scenario {job.job_id} already finished")
            return http.Response.json({"id": job.job_id, "queued": True},
                                      status=201)
        return http.Response.error(404, f"no route {request.path!r}")

    return http.Response.error(404, f"no route {request.path!r}")


class ObservatoryServer:
    """The asyncio server tying routes, hub and WebSocket streams together."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 observatory: Optional[Observatory] = None) -> None:
        self.host = host
        self.port = port
        self.observatory = observatory
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port) —
        ``port=0`` binds an ephemeral port, reported here."""
        if self.observatory is None:
            self.observatory = Observatory(loop=asyncio.get_running_loop())
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await http.read_request(reader)
            except http.BadRequest as exc:
                writer.write(http.Response.error(400, str(exc)).encode())
                await writer.drain()
                return
            if request is None:
                return
            if http.is_websocket_upgrade(request):
                await self._handle_websocket(request, reader, writer)
                return
            try:
                response = route_request(self.observatory, request)
            except http.BadRequest as exc:
                response = http.Response.error(400, str(exc))
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_websocket(self, request: http.Request,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        parts = [part for part in request.path.split("/") if part]
        if (len(parts) != 3 or parts[0] != "scenarios"
                or parts[2] != "stream"):
            writer.write(http.Response.error(
                404, "stream endpoint: /scenarios/<id>/stream").encode())
            await writer.drain()
            return
        job = self.observatory.get(parts[1])
        if job is None:
            writer.write(http.Response.error(
                404, f"no scenario {parts[1]!r}").encode())
            await writer.drain()
            return
        writer.write(http.websocket_handshake_response(request))
        await writer.drain()
        subscription = self.observatory.subscribe(job.job_id)
        #: drain client frames concurrently (close / ping while we stream)
        reader_task = asyncio.ensure_future(self._drain_client(reader,
                                                               writer))
        try:
            while True:
                getter = asyncio.ensure_future(subscription.get())
                done, _ = await asyncio.wait(
                    {getter, reader_task},
                    return_when=asyncio.FIRST_COMPLETED)
                if reader_task in done and not getter.done():
                    getter.cancel()
                    break
                # non-blocking: asyncio.wait above guarantees getter is done
                message = getter.result()  # repro-lint: disable=blocking-async
                if message is None:
                    # end-of-topic sentinel: say goodbye cleanly
                    writer.write(http.encode_frame(http.OP_CLOSE, b""))
                    await writer.drain()
                    break
                writer.write(http.encode_text(
                    json.dumps(message, sort_keys=True)))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.observatory.hub.unsubscribe(subscription)
            if not reader_task.done():
                reader_task.cancel()

    @staticmethod
    async def _drain_client(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """Answer pings and return when the client closes / disconnects."""
        while True:
            frame = await http.read_frame(reader)
            if frame is None:
                return
            opcode, payload = frame
            if opcode == http.OP_CLOSE:
                try:
                    writer.write(http.encode_frame(http.OP_CLOSE, payload))
                    await writer.drain()
                except ConnectionError:
                    pass
                return
            if opcode == http.OP_PING:
                writer.write(http.encode_frame(http.OP_PONG, payload))
                await writer.drain()


class ServerThread:
    """Run an :class:`ObservatoryServer` on a background event loop.

    The embedding helper tests and the CLI follower use: start one
    service in-process, talk to it over real sockets, shut it down
    cleanly — no sleeps, the constructor returns once the port is bound.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._loop = asyncio.new_event_loop()
        self._server = ObservatoryServer(host=host, port=port)
        started: "concurrent.futures.Future[Tuple[str, int]]" = (
            concurrent.futures.Future())

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                address = self._loop.run_until_complete(self._server.start())
            except BaseException as exc:  # bind failure reaches the caller
                started.set_exception(exc)
                return
            started.set_result(address)
            try:
                self._loop.run_forever()
            finally:
                self._loop.close()

        self._thread = threading.Thread(target=runner,
                                        name="observatory", daemon=True)
        self._thread.start()
        self.host, self.port = started.result(timeout=30)

    @property
    def observatory(self) -> Observatory:
        return self._server.observatory

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop
        future = asyncio.run_coroutine_threadsafe(self._server.close(), loop)
        try:
            future.result(timeout=timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            self._thread.join(timeout=timeout)
