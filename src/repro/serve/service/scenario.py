"""JSON scenario specs for the live observatory.

A scenario spec is one JSON object describing everything a ``repro
serve`` invocation would: models, fleet, scheduling, traffic, SLOs,
faults, fault tolerance, control plane and telemetry.  Validation is
split in two:

* :func:`validate_spec` — cheap structural checks (model names, fleet
  spec, fault targets, traffic/policy names, config field names) run on
  the service thread at submit time so a bad request gets a ``400``
  immediately;
* :func:`build_scenario` — the expensive part (plan-cache warmup, rate
  auto-derivation) runs later on the scenario's worker thread.

Example spec::

    {
      "models": ["resnet18"],
      "fleet": "M:2",
      "policy": "latency",
      "batches": [1, 2, 4, 8],
      "seed": 0,
      "traffic": {"kind": "poisson", "requests": 120, "utilization": 0.8},
      "slo": {"resnet18": 12.0},
      "inject": ["chip_fail@500:chip=0,until=2000"],
      "fault_tolerance": {"timeout_us": 4000, "max_retries": 2},
      "control": {"interval_us": 200, "autoscale": "1:4"},
      "telemetry": {"timeline_us": 500}
    }
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.fitness import FitnessMode
from repro.models import list_models
from repro.search import validate_optimizer
from repro.serve import (
    TRAFFIC_GENERATORS,
    ClosedLoopTraffic,
    ControlConfig,
    FaultTolerance,
    Fleet,
    PlanCache,
    ServingSimulator,
    TelemetryConfig,
    fleet_capacity_rps,
    parse_inject,
    validate_fault_targets,
    validate_policy,
)
from repro.serve.traffic import Request, TrafficGenerator, validate_traffic

#: traffic kinds the service accepts (``trace`` needs a server-side file —
#: out of scope for a JSON submission API)
SERVICE_TRAFFIC_KINDS = ("poisson", "bursty", "diurnal", "closed")

#: a submitted scenario with no ``telemetry`` block still streams — the
#: observatory exists to watch windows, so a default interval applies
DEFAULT_TIMELINE_US = 500.0


def _config_from(cls, block: Dict[str, object], label: str):
    """Instantiate a config dataclass from a JSON block, strictly.

    Unknown keys are an error (a typo'd knob must not silently no-op);
    the dataclass's own ``__post_init__`` validation supplies the value
    checks.
    """
    if not isinstance(block, dict):
        raise ValueError(f"{label} must be an object")
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(block) - known)
    if unknown:
        raise ValueError(
            f"unknown {label} key(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}")
    try:
        return cls(**block)
    except TypeError as exc:
        raise ValueError(f"bad {label} block: {exc}") from None


def _control_from(block: Dict[str, object]) -> ControlConfig:
    """Control block; ``autoscale`` accepts the CLI's ``"MIN:MAX"`` form."""
    if not isinstance(block, dict):
        raise ValueError("control must be an object")
    block = dict(block)
    autoscale = block.get("autoscale")
    if isinstance(autoscale, str):
        lo, sep, hi = autoscale.partition(":")
        try:
            if not sep:
                raise ValueError(autoscale)
            block["min_chips"], block["max_chips"] = int(lo), int(hi)
        except ValueError:
            raise ValueError(
                f"bad control.autoscale {autoscale!r}; expected MIN:MAX "
                "chip counts") from None
        block["autoscale"] = True
    return _config_from(ControlConfig, block, "control")


def _telemetry_from(block: Optional[Dict[str, object]]) -> TelemetryConfig:
    """Telemetry block (``timeline_us`` aliases ``timeline_interval_us``)."""
    if block is None:
        return TelemetryConfig(timeline_interval_us=DEFAULT_TIMELINE_US)
    if not isinstance(block, dict):
        raise ValueError("telemetry must be an object")
    block = dict(block)
    if "timeline_us" in block:
        block["timeline_interval_us"] = block.pop("timeline_us")
    if "timeline_interval_us" not in block:
        block["timeline_interval_us"] = DEFAULT_TIMELINE_US
    return _config_from(TelemetryConfig, block, "telemetry")


@dataclass
class ScenarioSpec:
    """A validated (but not yet built) scenario submission."""

    models: List[str]
    fleet_spec: str
    policy: str
    batch_sizes: List[int]
    max_wait_us: float
    optimizer: str
    mode: FitnessMode
    cache_capacity: int
    seed: int
    traffic_kind: str
    traffic_kwargs: Dict[str, object]
    slos: Dict[str, float]
    inject: List[str]
    fault_tolerance: FaultTolerance
    control: Optional[ControlConfig]
    telemetry: TelemetryConfig
    #: rate auto-derivation target when the spec gave no explicit rate
    utilization: float
    rate_rps: Optional[float]


@dataclass
class BuiltScenario:
    """A fully built scenario, ready for ``simulator.run``."""

    simulator: ServingSimulator
    #: either the pregenerated request list or the closed-loop generator
    workload: Union[Sequence[Request], ClosedLoopTraffic]
    traffic_info: Dict[str, object]


def validate_spec(raw: Dict[str, object]) -> ScenarioSpec:
    """Cheap structural validation of a submitted scenario (raises
    ``ValueError`` with a client-presentable message)."""
    if not isinstance(raw, dict):
        raise ValueError("scenario spec must be a JSON object")
    known_keys = {
        "models", "fleet", "policy", "batches", "max_wait_us", "optimizer",
        "mode", "cache_capacity", "seed", "traffic", "slo", "inject",
        "fault_tolerance", "control", "telemetry",
    }
    unknown = sorted(set(raw) - known_keys)
    if unknown:
        raise ValueError(
            f"unknown spec key(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known_keys))}")

    models = raw.get("models") or ["resnet18"]
    if not isinstance(models, list) or not models:
        raise ValueError("models must be a non-empty list of model names")
    available = set(list_models())
    for model in models:
        if model not in available:
            raise ValueError(
                f"unknown model {model!r}; available: "
                + ", ".join(sorted(available)))

    fleet_spec = str(raw.get("fleet", "M:1"))
    fleet = Fleet.from_spec(fleet_spec)  # raises ValueError on a bad spec

    policy = str(raw.get("policy", "latency"))
    validate_policy(policy)

    optimizer = str(raw.get("optimizer", "dp"))
    validate_optimizer(optimizer)

    mode_name = str(raw.get("mode", "latency"))
    if mode_name not in ("latency", "edp"):
        raise ValueError(f"mode must be 'latency' or 'edp', got {mode_name!r}")
    mode = FitnessMode.EDP if mode_name == "edp" else FitnessMode.LATENCY

    batches = raw.get("batches") or [1, 2, 4, 8, 16]
    if (not isinstance(batches, list)
            or not all(isinstance(b, int) and b > 0 for b in batches)):
        raise ValueError("batches must be a list of positive integers")
    batch_sizes = sorted(set(batches))

    cache_capacity = int(raw.get("cache_capacity", 64))
    seed = int(raw.get("seed", 0))
    max_wait_us = float(raw.get("max_wait_us", 200.0))

    traffic = raw.get("traffic") or {}
    if not isinstance(traffic, dict):
        raise ValueError("traffic must be an object")
    traffic = dict(traffic)
    kind = str(traffic.pop("kind", "poisson"))
    validate_traffic(kind)
    if kind not in SERVICE_TRAFFIC_KINDS:
        raise ValueError(
            f"traffic kind {kind!r} is not serveable over the API; "
            f"use one of: {', '.join(SERVICE_TRAFFIC_KINDS)}")
    num_requests = int(traffic.pop("requests", 200))
    if num_requests <= 0:
        raise ValueError("traffic.requests must be positive")
    rate_rps = traffic.pop("rate_rps", None)
    rate_rps = float(rate_rps) if rate_rps is not None else None
    utilization = float(traffic.pop("utilization", 0.7))
    kwargs: Dict[str, object] = {"num_requests": num_requests, "seed": seed}
    if kind == "closed":
        kwargs["clients"] = int(traffic.pop("clients", 4))
        kwargs["concurrency"] = int(traffic.pop("concurrency", 1))
        kwargs["mean_think_s"] = float(traffic.pop("think_us", 200.0)) * 1e-6
    if traffic:
        raise ValueError(
            "unknown traffic key(s): " + ", ".join(sorted(traffic)))

    slo_block = raw.get("slo") or {}
    if not isinstance(slo_block, dict):
        raise ValueError("slo must be an object of MODEL: target_ms")
    slos: Dict[str, float] = {}
    for model, target in slo_block.items():
        if model not in models:
            raise ValueError(
                f"slo names unknown model {model!r}; served models: "
                + ", ".join(sorted(models)))
        slos[model] = float(target)

    inject = raw.get("inject") or []
    if not isinstance(inject, list):
        raise ValueError("inject must be a list of fault spec strings")
    fault_events = [parse_inject(str(spec)) for spec in inject]
    validate_fault_targets(fault_events, len(fleet.workers))

    fault_tolerance = _config_from(
        FaultTolerance, raw.get("fault_tolerance") or {}, "fault_tolerance")
    control_block = raw.get("control")
    control = _control_from(control_block) if control_block else None
    telemetry = _telemetry_from(raw.get("telemetry"))
    if telemetry.timeline_interval_us <= 0:
        raise ValueError(
            "telemetry.timeline_us must be positive: the observatory "
            "streams per-window telemetry")

    return ScenarioSpec(
        models=[str(m) for m in models],
        fleet_spec=fleet_spec,
        policy=policy,
        batch_sizes=batch_sizes,
        max_wait_us=max_wait_us,
        optimizer=optimizer,
        mode=mode,
        cache_capacity=cache_capacity,
        seed=seed,
        traffic_kind=kind,
        traffic_kwargs=kwargs,
        slos=slos,
        inject=[str(spec) for spec in inject],
        fault_tolerance=fault_tolerance,
        control=control,
        telemetry=telemetry,
        utilization=utilization,
        rate_rps=rate_rps,
    )


def build_scenario(spec: ScenarioSpec) -> BuiltScenario:
    """Build the simulator + workload (expensive: plan-cache warmup)."""
    fleet = Fleet.from_spec(spec.fleet_spec)
    cache = PlanCache(capacity=spec.cache_capacity, optimizer=spec.optimizer,
                      mode=spec.mode)
    cache.warmup(spec.models, fleet.chip_names, spec.batch_sizes)
    kwargs = dict(spec.traffic_kwargs, models=spec.models)
    if spec.traffic_kind != "closed":
        rate = (spec.rate_rps if spec.rate_rps is not None
                else spec.utilization * fleet_capacity_rps(
                    cache, fleet, spec.models, spec.batch_sizes))
        if spec.traffic_kind == "diurnal":
            kwargs["base_rate_rps"] = rate
        else:
            kwargs["rate_rps"] = rate
    generator: TrafficGenerator = TRAFFIC_GENERATORS[spec.traffic_kind](
        **kwargs)
    faults = [parse_inject(entry) for entry in spec.inject]
    simulator = ServingSimulator(
        fleet,
        cache,
        policy=spec.policy,
        batch_sizes=spec.batch_sizes,
        max_wait_us=spec.max_wait_us,
        slos=spec.slos,
        faults=faults,
        fault_tolerance=spec.fault_tolerance,
        control=spec.control,
        telemetry=spec.telemetry,
    )
    workload: Union[Sequence[Request], ClosedLoopTraffic] = (
        generator if isinstance(generator, ClosedLoopTraffic)
        else generator.generate())
    return BuiltScenario(
        simulator=simulator,
        workload=workload,
        traffic_info=generator.describe(),
    )
