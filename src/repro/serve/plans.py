"""Compiled-plan cache: the serving layer's interface to the compiler stack.

A serving fleet does not re-run partition search per request — it reuses
compiled partition plans.  The :class:`PlanCache` memoises one
:class:`CompiledPlan` per :class:`PlanKey` ``(model, chip, dram, batch,
mode, optimizer)`` with LRU eviction, and keeps hit/miss/eviction statistics
in the style of :class:`~repro.perf.spantable.SpanTableStats` so serving
reports can show how hard the cache worked.

Plan compilation routes through the shared stack end to end: the
process-wide registry (:func:`~repro.evaluation.registry.shared_decomposition`)
provides the decomposition + validity map, any :mod:`repro.search` engine
(``dp`` by default — exact and deterministic) chooses the partition group,
and the dense span matrix serves the plan's latency/energy numbers.  Because
decompositions are shared process-wide, warming one plan warms the span
triangle for every other plan of the same (model, chip) pair — a cache miss
for batch 16 is almost free after batch 1 was compiled.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.ga import GAConfig
from repro.evaluation.registry import shared_decomposition
from repro.hardware.dram import DRAMConfig, LPDDR3_8GB
from repro.perf.spantable import span_table_for


@dataclass(frozen=True)
class PlanKey:
    """Identity of one compiled plan."""

    model: str
    chip: str
    dram: DRAMConfig
    batch: int
    mode: FitnessMode
    optimizer: str


def degraded_dram(config: DRAMConfig, factor: float) -> DRAMConfig:
    """A DRAM configuration with every core timing scaled by ``factor``.

    Models a chip whose external DRAM dropped to a slower operating point
    (thermal throttling, a failed rank forcing a conservative profile):
    clock and tRCD/tRP/tRAS/tCAS all stretch by ``factor`` (> 1 is slower).
    Because :class:`DRAMConfig` is frozen and hashable, the degraded
    variant is its own :class:`PlanKey` dimension — re-pricing a model on
    degraded DRAM routes through the full shared-decomposition /
    search / span-matrix stack, exactly like any other cache miss.
    ``factor == 1`` returns the configuration unchanged.
    """
    if factor <= 0:
        raise ValueError(f"DRAM degradation factor must be positive, got {factor}")
    if factor == 1.0:
        return config
    return dataclasses.replace(
        config,
        name=f"{config.name}@x{factor:g}",
        clock_ns=config.clock_ns * factor,
        t_rcd_ns=config.t_rcd_ns * factor,
        t_rp_ns=config.t_rp_ns * factor,
        t_ras_ns=config.t_ras_ns * factor,
        t_cas_ns=config.t_cas_ns * factor,
    )


@dataclass(frozen=True)
class CompiledPlan:
    """One served plan: the chosen partition group plus its serving numbers.

    ``latency_ns`` / ``energy_pj`` are the service latency and energy of one
    batch of ``key.batch`` samples, summed sequentially over the group's
    spans exactly like :class:`~repro.core.fitness.GroupEvaluation` — in
    latency mode ``latency_ns`` is bit-identical to the search engine's
    ``best_fitness``.  The slim component totals carry the span-matrix
    per-batch latency curve ``WR + (FILL + (B-1)*BN)``, so
    :meth:`latency_at` can evaluate what this group would cost at *other*
    batch sizes in O(1) — a what-if curve for capacity analysis.  (The
    dynamic batcher itself compares the cache's per-size compiled plans,
    which re-optimise the partitioning for each batch size.)
    """

    key: PlanKey
    boundaries: Tuple[int, ...]
    num_partitions: int
    latency_ns: float
    energy_pj: float
    weight_replace_ns: float
    fill_ns: float
    bottleneck_ns: float
    best_fitness: float
    exact: bool
    evaluations: int

    # ------------------------------------------------------------------
    def latency_at(self, batch_size: int) -> float:
        """Latency curve of this group at another batch size (ns).

        The affine span-matrix curve: total weight-replacement cost plus the
        pipeline fill and ``batch_size - 1`` bottleneck iterations.
        """
        return self.weight_replace_ns + (
            self.fill_ns + (batch_size - 1) * self.bottleneck_ns
        )

    @property
    def throughput_rps(self) -> float:
        """Peak throughput of one chip running this plan back to back."""
        return self.key.batch / (self.latency_ns * 1e-9) if self.latency_ns else 0.0


@dataclass
class PlanCacheStats:
    """Hit/miss counters of one plan cache (a snapshot, see ``PlanCache.stats``)."""

    #: plans compiled (cache misses)
    misses: int = 0
    #: requests served from the cache
    hits: int = 0
    #: plans evicted by the LRU policy
    evictions: int = 0
    #: plans compiled during :meth:`PlanCache.warmup` prefill
    warmup_compiles: int = 0
    #: plans currently resident
    size: int = 0
    #: maximum resident plans
    capacity: int = 0

    @property
    def requests(self) -> int:
        """Total plan lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of plan lookups served from the cache."""
        requests = self.requests
        return self.hits / requests if requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports and serving-report serialization."""
        return {
            "misses": self.misses,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "warmup_compiles": self.warmup_compiles,
            "size": self.size,
            "capacity": self.capacity,
        }


class PlanCache:
    """LRU cache of compiled partition plans, keyed by :class:`PlanKey`."""

    def __init__(
        self,
        capacity: int = 64,
        optimizer: str = "dp",
        mode: FitnessMode = FitnessMode.LATENCY,
        dram_config: DRAMConfig = LPDDR3_8GB,
        optimizer_options: Optional[Dict[str, object]] = None,
        ga_config: Optional[GAConfig] = None,
        input_size: int = 224,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        from repro.search import validate_optimizer

        validate_optimizer(optimizer)
        self.capacity = capacity
        self.optimizer = optimizer
        self.mode = mode
        self.dram_config = dram_config
        self.optimizer_options: Dict[str, object] = dict(optimizer_options or {})
        self.ga_config = ga_config if ga_config is not None else GAConfig()
        self.input_size = input_size
        self._plans: "OrderedDict[PlanKey, CompiledPlan]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._warmup_compiles = 0
        self._in_warmup = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._plans)

    def key_for(self, model: str, chip: str, batch: int,
                dram: Optional[DRAMConfig] = None) -> PlanKey:
        """The cache key of a (model, chip, batch) plan under this config.

        ``dram`` overrides the cache-wide DRAM configuration — the hook the
        fault layer uses to price a chip's plans on degraded DRAM (see
        :func:`degraded_dram`) without a second cache.
        """
        return PlanKey(model=model, chip=chip,
                       dram=self.dram_config if dram is None else dram,
                       batch=batch, mode=self.mode, optimizer=self.optimizer)

    def contains(self, model: str, chip: str, batch: int,
                 dram: Optional[DRAMConfig] = None) -> bool:
        """Whether a plan is resident (does not touch stats or LRU order)."""
        return self.key_for(model, chip, batch, dram) in self._plans

    @property
    def stats(self) -> PlanCacheStats:
        """Snapshot of the cache's hit/miss/eviction counters."""
        return PlanCacheStats(
            misses=self._misses,
            hits=self._hits,
            evictions=self._evictions,
            warmup_compiles=self._warmup_compiles,
            size=len(self._plans),
            capacity=self.capacity,
        )

    # ------------------------------------------------------------------
    def get(self, model: str, chip: str, batch: int,
            dram: Optional[DRAMConfig] = None) -> CompiledPlan:
        """The compiled plan of a (model, chip, batch) triple (LRU-tracked).

        A hit moves the plan to the most-recently-used position; a miss
        compiles the plan through the shared registry / search / span-matrix
        stack and may evict the least-recently-used resident plan.  ``dram``
        overrides the cache-wide DRAM configuration (degraded-DRAM faults).
        """
        key = self.key_for(model, chip, batch, dram)
        plan = self._plans.get(key)
        if plan is not None:
            self._hits += 1
            self._plans.move_to_end(key)
            return plan
        self._misses += 1
        if self._in_warmup:
            self._warmup_compiles += 1
        plan = self._compile(key)
        self._plans[key] = plan
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self._evictions += 1
        return plan

    def warmup(
        self,
        models: Iterable[str],
        chips: Iterable[str],
        batch_sizes: Iterable[int],
    ) -> int:
        """Prefill the cache for a cross product; returns plans compiled.

        Warmup misses are counted separately (``warmup_compiles``) so a
        serving report can distinguish prefill work from misses under load.
        """
        self._in_warmup = True
        before = self._warmup_compiles
        try:
            for model in models:
                for chip in chips:
                    for batch in batch_sizes:
                        self.get(model, chip, batch)
        finally:
            self._in_warmup = False
        return self._warmup_compiles - before

    # ------------------------------------------------------------------
    def _compile(self, key: PlanKey) -> CompiledPlan:
        """Compile one plan: shared decomposition -> search -> span numbers."""
        from repro.search import make_search

        decomposition, validity = shared_decomposition(
            key.model, key.chip, input_size=self.input_size
        )
        evaluator = FitnessEvaluator(
            decomposition, batch_size=key.batch, mode=key.mode,
            dram_config=key.dram,
        )
        kwargs = dict(self.optimizer_options)
        if key.optimizer == "ga":
            kwargs.setdefault("ga_config", self.ga_config)
        result = make_search(
            key.optimizer, decomposition, evaluator, validity, **kwargs
        ).run()
        group = result.best_group
        spans = group.spans()
        starts = np.fromiter((s for s, _ in spans), dtype=np.int64, count=len(spans))
        ends = np.fromiter((e for _, e in spans), dtype=np.int64, count=len(spans))

        matrix = evaluator.span_matrix
        if matrix is not None:
            latencies = matrix.gather_latency(starts, ends, key.batch)
            weight_replace, fill, bottleneck = matrix.gather_components(starts, ends)
            energies, _ = matrix.gather_energy_latency(starts, ends, key.batch)
            latencies = latencies.tolist()
            energies = energies.tolist()
            weight_replace = weight_replace.tolist()
            fill = fill.tolist()
            bottleneck = bottleneck.tolist()
        else:
            table = evaluator.span_table or span_table_for(decomposition, key.dram)
            records = [table.slim_record(s, e) for s, e in spans]
            weight_replace = [r[0] for r in records]
            fill = [r[1] for r in records]
            bottleneck = [r[2] for r in records]
            latencies = [table.latency_ns(s, e, key.batch) for s, e in spans]
            energies = [table.estimate(s, e, key.batch).energy_pj for s, e in spans]

        # sequential sums, matching the evaluator's fitness association
        return CompiledPlan(
            key=key,
            boundaries=tuple(group.boundaries),
            num_partitions=group.num_partitions,
            latency_ns=float(sum(latencies)),
            energy_pj=float(sum(energies)),
            weight_replace_ns=float(sum(weight_replace)),
            fill_ns=float(sum(fill)),
            bottleneck_ns=float(sum(bottleneck)),
            best_fitness=result.best_fitness,
            exact=result.exact,
            evaluations=result.evaluations,
        )
