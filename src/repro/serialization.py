"""Serialization of compilation results to plain JSON-compatible dictionaries.

The compiler produces rich nested objects (plans, estimates, GA history);
this module flattens them into dictionaries of built-in types so results can
be dumped to JSON, compared across runs, or post-processed by plotting
scripts without importing the whole library.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.compiler import CompilationResult
from repro.core.ga import GAResult
from repro.onchip.estimator import PartitionEstimate
from repro.search import SearchResult
from repro.serve.simulator import ServingReport
from repro.sim.simulator import ExecutionReport


def partition_estimate_to_dict(estimate: PartitionEstimate) -> Dict[str, Any]:
    """Flatten one partition estimate (latency phases, energy, plan summary)."""
    plan = estimate.plan
    latency = estimate.latency
    return {
        "span": [plan.partition.start, plan.partition.end],
        "num_units": plan.partition.num_units,
        "layers": plan.partition.layer_names(),
        "weight_bytes": plan.single_copy_weight_bytes,
        "replicated_weight_bytes": plan.replicated_weight_bytes,
        "crossbars_used": plan.crossbars_used,
        "cores_used": plan.core_mapping.cores_used,
        "replication": dict(plan.replication.factors),
        "batch_size": estimate.batch_size,
        "io": {
            "load_bytes": estimate.io.load_bytes,
            "store_bytes": estimate.io.store_bytes,
            "num_entries": estimate.io.num_entries,
            "num_exits": estimate.io.num_exits,
        },
        "latency_ns": {
            "weight_load": latency.weight_load_ns,
            "weight_write": latency.weight_write_ns,
            "weight_replace": latency.weight_replace_ns,
            "pipeline": latency.pipeline_ns,
            "total": latency.total_ns,
        },
        "energy_pj": estimate.energy.as_dict(),
        "total_energy_pj": estimate.energy_pj,
    }


def execution_report_to_dict(report: ExecutionReport) -> Dict[str, Any]:
    """Flatten an execution report (the whole-model summary plus partitions)."""
    result: Dict[str, Any] = {
        "model": report.model_name,
        "chip": report.chip_name,
        "scheme": report.scheme,
        "batch_size": report.batch_size,
        "num_partitions": report.num_partitions,
        "total_latency_ns": report.total_latency_ns,
        "latency_per_inference_ms": report.latency_per_inference_ms,
        "throughput_ips": report.throughput,
        "total_energy_pj": report.total_energy_pj,
        "energy_per_inference_mj": report.energy_per_inference_mj,
        "edp_per_inference_mj_ms": report.edp_per_inference,
        "energy_breakdown_pj": report.energy_breakdown.as_dict(),
        "weight_traffic_bytes": report.weight_traffic_bytes(),
        "feature_traffic_bytes": report.feature_traffic_bytes(),
        "partitions": [partition_estimate_to_dict(e) for e in report.estimates],
    }
    if report.dram_stats is not None:
        stats = report.dram_stats
        result["dram"] = {
            "num_requests": stats.num_requests,
            "read_bytes": stats.read_bytes,
            "write_bytes": stats.write_bytes,
            "row_hit_rate": stats.row_hit_rate,
            "average_latency_ns": stats.average_latency_ns,
            "energy_pj": stats.energy_pj,
        }
    return result


def ga_result_to_dict(ga_result: GAResult) -> Dict[str, Any]:
    """Flatten a GA run: best group and full per-generation history (Fig. 10)."""
    return {
        "best_boundaries": list(ga_result.best_group.boundaries),
        "best_fitness": ga_result.best_fitness,
        "generations_run": ga_result.generations_run,
        "evaluations": ga_result.evaluations,
        "history": [
            {
                "generation": record.generation,
                "best_fitness": record.best_fitness,
                "mean_fitness": record.mean_fitness,
                "fitnesses": list(record.fitnesses),
                "num_partitions": list(record.num_partitions),
                "selected_mask": list(record.selected_mask),
            }
            for record in ga_result.history
        ],
    }


def search_result_to_dict(result: SearchResult,
                          include_history: bool = True) -> Dict[str, Any]:
    """Flatten a partition-search outcome (any :mod:`repro.search` engine)."""
    data: Dict[str, Any] = {
        "optimizer": result.optimizer,
        "best_boundaries": list(result.best_group.boundaries),
        "best_fitness": result.best_fitness,
        "steps_run": result.steps_run,
        "evaluations": result.evaluations,
        "exact": result.exact,
        "span_stats": dict(result.span_stats),
    }
    if include_history:
        data["history"] = [
            {
                "step": step.step,
                "best_fitness": step.best_fitness,
                "candidate_fitness": step.candidate_fitness,
                "accepted": step.accepted,
                "num_partitions": step.num_partitions,
            }
            for step in result.history
        ]
    return data


def compilation_result_to_dict(result: CompilationResult,
                               include_ga_history: bool = True) -> Dict[str, Any]:
    """Flatten a full compilation result."""
    data: Dict[str, Any] = {
        "model": result.graph.name,
        "chip": result.chip.name,
        "scheme": result.options.scheme,
        "optimizer": result.options.optimizer,
        "batch_size": result.options.batch_size,
        "weight_bits": result.options.weight_bits,
        "num_units": result.decomposition.num_units,
        "model_weight_bytes": result.decomposition.total_weight_bytes(),
        "chip_capacity_bytes": result.chip.weight_capacity_bytes,
        "boundaries": list(result.group.boundaries),
        "num_partitions": result.num_partitions,
        "valid_fraction": result.validity.valid_fraction(),
        "report": execution_report_to_dict(result.report),
    }
    if result.schedule is not None:
        data["instructions"] = {
            opcode.value: count
            for opcode, count in result.schedule.count_by_opcode().items()
        }
        data["total_instructions"] = result.schedule.total_instructions
    if include_ga_history and result.ga_result is not None:
        data["ga"] = ga_result_to_dict(result.ga_result)
    if result.search_result is not None:
        # the GA's per-generation history is already under "ga"; the search
        # block then carries only the engine-level summary, not a mirror
        data["search"] = search_result_to_dict(
            result.search_result,
            include_history=include_ga_history and result.ga_result is None,
        )
    return data


def dump_compilation_result(result: CompilationResult, path: str,
                            include_ga_history: bool = True) -> None:
    """Write a compilation result to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(compilation_result_to_dict(result, include_ga_history), handle, indent=2)


def serving_report_to_dict(report: ServingReport) -> Dict[str, Any]:
    """Flatten a serving run (:mod:`repro.serve`) for JSON dumps.

    Everything except the ``plan_cache`` block is bit-identical for a fixed
    traffic seed, whatever the cache temperature (see
    :meth:`~repro.serve.simulator.ServingReport.determinism_dict`).
    Histogram keys are stringified for JSON; the ``switch`` block appears
    only when plan-switch cost was modelled, the ``slo`` block only when
    per-model targets were set, the ``faults`` block (failures, retries,
    timeouts, shed/lost counts, lost work, availability — plus per-chip
    downtime columns) only when faults were injected or fault-tolerance
    machinery was active, and the ``control`` block (detections vs
    injected truth, hedge outcomes, scale events, re-placements) only when
    the self-healing control plane ran, and the ``timeline``/``telemetry``
    blocks only when the telemetry layer ran — so dumps with every feature
    off keep the original shape.
    """
    return report.as_dict()


def dump_serving_report(report: ServingReport, path: str) -> None:
    """Write a serving report to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(serving_report_to_dict(report), handle, indent=2)


#: canonical timeline CSV column order: headline metrics, then event
#: counters, then control deltas — the flattened ``slo_<model>`` columns
#: slot in after ``attainment``; keys outside this list append sorted at
#: the end (a forward-compatibility safety net, not an expected case)
_TIMELINE_CSV_COLUMNS = [
    "window", "t_ms", "arrivals", "completed", "throughput_rps",
    "p50_ms", "p95_ms", "p99_ms", "queue_depth", "utilisation",
    "attainment", "shed", "timeouts", "lost", "retries", "failures",
    "recoveries", "quarantines", "readmissions", "hedges", "scale_ups",
    "scale_downs", "replacements",
]


def _csv_cell(value: Any) -> str:
    """One CSV cell: floats get a fixed ``.6f`` so the artifact is
    byte-stable across platforms and float-repr changes; everything else
    renders with ``str``."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def timeline_to_csv(timeline: List[Dict[str, Any]]) -> str:
    """Render a metrics timeline as CSV text (deterministic column order).

    Columns follow the canonical timeline order (headline metrics, event
    counters, control deltas), restricted to keys some row actually has —
    never the rows' dict-iteration order; the nested per-model ``slo``
    block flattens to one ``slo_<model>`` column each, placed after
    ``attainment``.  Floats are formatted with an explicit ``.6f`` so a
    fixed seed yields a byte-identical artifact.
    """
    flat: List[Dict[str, Any]] = []
    slo_columns: List[str] = []
    for row in timeline:
        out: Dict[str, Any] = {}
        for key, value in row.items():
            if key == "slo" and isinstance(value, dict):
                for model in sorted(value):
                    column = f"slo_{model}"
                    out[column] = value[model]
                    if column not in slo_columns:
                        slo_columns.append(column)
            else:
                out[key] = value
        flat.append(out)
    slo_columns.sort()
    present = set()
    for row in flat:
        present.update(row)
    columns: List[str] = []
    for column in _TIMELINE_CSV_COLUMNS:
        if column in present:
            columns.append(column)
        if column == "attainment":
            columns.extend(slo_columns)
    columns.extend(sorted(present - set(columns)))
    lines = [",".join(columns)]
    for row in flat:
        lines.append(",".join(
            _csv_cell(row[col]) if col in row else ""
            for col in columns))
    return "\n".join(lines) + "\n"


def dump_metrics_timeline(timeline: List[Dict[str, Any]], path: str) -> None:
    """Write a serving report's ``timeline`` block to JSON or CSV.

    The format follows the extension: ``.csv`` gets the flat table from
    :func:`timeline_to_csv`, anything else a sorted-key JSON array — both
    byte-identical for a fixed seed (``repro serve --metrics-out``).
    """
    with open(path, "w", encoding="utf-8") as handle:
        if path.lower().endswith(".csv"):
            handle.write(timeline_to_csv(timeline))
        else:
            json.dump(timeline, handle, indent=2, sort_keys=True)


def dump_chrome_trace(trace: Dict[str, Any], path: str) -> None:
    """Write a Chrome trace-event object to a JSON file.

    ``trace`` is :meth:`~repro.serve.telemetry.RequestTracer.chrome_trace`'s
    return value; the dump is sorted-key and indented, so a fixed seed
    produces a byte-identical artifact (``repro serve --trace-out``), and
    the file loads directly in Perfetto / chrome://tracing.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=2, sort_keys=True)


def load_result_dict(path: str) -> Dict[str, Any]:
    """Read back a previously dumped result."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
