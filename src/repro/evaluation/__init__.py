"""Evaluation harness: reproduce every table and figure of the paper.

Each experiment is a function returning plain data (lists of dict rows or
numpy arrays) so the same code serves the benchmarks, the examples and the
EXPERIMENTS.md record.  :class:`ExperimentSuite` bundles them with shared
configuration (GA size, batch sizes, chips) and a ``fast`` mode for CI.
"""

from repro.evaluation.experiments import (
    ExperimentConfig,
    ExperimentSuite,
    make_sweep_runner,
    table1_hardware_configuration,
    table2_model_support,
    fig5_validity_maps,
    fig6_throughput_comparison,
    fig7_latency_breakdown,
    fig8_energy_and_edp,
    fig9_weight_energy_vs_batch,
    fig10_ga_convergence,
    optimality_gap,
)
from repro.evaluation.parallel import ParallelSweepRunner
from repro.evaluation.registry import shared_decomposition, shared_graph, shared_search
from repro.evaluation.sweeps import SweepRunner, SweepPoint

__all__ = [
    "ExperimentConfig",
    "ExperimentSuite",
    "make_sweep_runner",
    "table1_hardware_configuration",
    "table2_model_support",
    "fig5_validity_maps",
    "fig6_throughput_comparison",
    "fig7_latency_breakdown",
    "fig8_energy_and_edp",
    "fig9_weight_energy_vs_batch",
    "fig10_ga_convergence",
    "optimality_gap",
    "ParallelSweepRunner",
    "SweepRunner",
    "SweepPoint",
    "shared_decomposition",
    "shared_graph",
    "shared_search",
]
