"""Parameter-sweep runner used by the figure experiments.

A sweep point is one (model, chip, scheme, batch size) combination; the
runner compiles it, simulates the execution and returns the flat summary row
used by the figures.  Model graphs, decompositions and validity maps are
cached per (model, chip), so every scheme and batch size of a pair shares
one decomposition — and therefore one span table and one dense span matrix
(:mod:`repro.perf`): a partition span profiled while optimising batch 1 is
free for batch 16, whichever engine requested it first.

Compass points route through the **exact DP engine by default**
(``optimizer="dp"``): in latency mode the DP optimum is provably the best
partition group, so every compass sweep point is exact and deterministic —
no GA seed sensitivity.  Equivalence: the GA lands within a measured ~0.1%
of the DP optimum on the paper's configurations
(:func:`repro.evaluation.experiments.optimality_gap`), so DP-powered sweep
rows bound the GA rows from above on throughput while removing search noise.
Pass ``optimizer="ga"`` for the paper's original search; the Fig. 10
convergence path (:func:`~repro.evaluation.experiments.fig10_ga_convergence`)
keeps the GA unconditionally, as its subject *is* the GA.

For multi-core fan-out of independent sweep points see
:class:`repro.evaluation.parallel.ParallelSweepRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.compiler import CompilationResult, CompilerOptions, CompassCompiler
from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessMode
from repro.core.ga import GAConfig
from repro.core.validity import ValidityMap
from repro.evaluation.registry import shared_decomposition, shared_graph
from repro.graph.graph import Graph
from repro.hardware.config import get_chip_config


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep: Network-ChipConfig-BatchSize + scheme."""

    model: str
    chip: str
    scheme: str
    batch_size: int

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``ResNet18-S-4``."""
        return f"{self.model}-{self.chip}-{self.batch_size}"


class SweepRunner:
    """Compiles and simulates sweep points, caching model graphs."""

    def __init__(
        self,
        ga_config: GAConfig = GAConfig(),
        fitness_mode: FitnessMode = FitnessMode.LATENCY,
        generate_instructions: bool = False,
        input_size: int = 224,
        use_span_matrix: Optional[bool] = None,
        optimizer: str = "dp",
        optimizer_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.ga_config = ga_config
        self.fitness_mode = fitness_mode
        self.generate_instructions = generate_instructions
        self.input_size = input_size
        #: dense span-matrix engine toggle forwarded to the compiler
        #: (``None`` follows the ``REPRO_SPAN_MATRIX`` environment default)
        self.use_span_matrix = use_span_matrix
        #: partition-search engine for ``compass`` points (``ga``, ``dp``,
        #: ``beam``, ``anneal``); the default DP engine makes every compass
        #: point one exact shortest-path solve over the shared span matrix
        #: instead of a GA run (see the module docstring)
        self.optimizer = optimizer
        self.optimizer_options: Dict[str, object] = dict(optimizer_options or {})
        self._graphs: Dict[str, Graph] = {}
        self._results: Dict[SweepPoint, CompilationResult] = {}
        self._decompositions: Dict[Tuple[str, str], Tuple[ModelDecomposition, ValidityMap]] = {}

    # ------------------------------------------------------------------
    def graph(self, model: str) -> Graph:
        """Model graph for a model name (shared process-wide)."""
        if model not in self._graphs:
            self._graphs[model] = shared_graph(model, self.input_size)
        return self._graphs[model]

    def decomposition(self, model: str, chip_name: str) -> Tuple[ModelDecomposition, ValidityMap]:
        """Decomposition + validity map of a pair (shared process-wide).

        Sharing one decomposition across all schemes and batch sizes of a
        (model, chip) pair — and across runners in the same process — is
        what lets the span table amortise partition profiling across the
        whole sweep.
        """
        key = (model, chip_name)
        if key not in self._decompositions:
            self._decompositions[key] = shared_decomposition(
                model, chip_name, input_size=self.input_size
            )
        return self._decompositions[key]

    def run_point(self, point: SweepPoint) -> CompilationResult:
        """Compile and simulate one sweep point (cached)."""
        if point in self._results:
            return self._results[point]
        chip = get_chip_config(point.chip)
        options = CompilerOptions(
            scheme=point.scheme,
            batch_size=point.batch_size,
            optimizer=self.optimizer,
            optimizer_options=dict(self.optimizer_options),
            ga_config=self.ga_config,
            fitness_mode=self.fitness_mode,
            generate_instructions=self.generate_instructions,
            use_span_matrix=self.use_span_matrix,
        )
        decomposition, validity = self.decomposition(point.model, point.chip)
        result = CompassCompiler(chip, options).compile(
            self.graph(point.model), decomposition=decomposition, validity=validity,
        )
        self._results[point] = result
        return result

    def run(
        self,
        models: Iterable[str],
        chips: Iterable[str],
        schemes: Iterable[str],
        batch_sizes: Iterable[int],
    ) -> List[Dict[str, object]]:
        """Run the full cross product and return summary rows."""
        rows: List[Dict[str, object]] = []
        for model in models:
            for chip in chips:
                for batch in batch_sizes:
                    for scheme in schemes:
                        point = SweepPoint(model=model, chip=chip, scheme=scheme, batch_size=batch)
                        result = self.run_point(point)
                        row = result.report.summary_row()
                        row["label"] = point.label
                        rows.append(row)
        return rows
