"""Parameter-sweep runner used by the figure experiments.

A sweep point is one (model, chip, scheme, batch size) combination; the
runner compiles it, simulates the execution and returns the flat summary row
used by the figures.  Decompositions and model graphs are cached so a sweep
over many batch sizes does not rebuild them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.compiler import CompilationResult, CompilerOptions, CompassCompiler
from repro.core.fitness import FitnessMode
from repro.core.ga import GAConfig
from repro.graph.graph import Graph
from repro.hardware.config import get_chip_config
from repro.models import build_model


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep: Network-ChipConfig-BatchSize + scheme."""

    model: str
    chip: str
    scheme: str
    batch_size: int

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``ResNet18-S-4``."""
        return f"{self.model}-{self.chip}-{self.batch_size}"


class SweepRunner:
    """Compiles and simulates sweep points, caching model graphs."""

    def __init__(
        self,
        ga_config: GAConfig = GAConfig(),
        fitness_mode: FitnessMode = FitnessMode.LATENCY,
        generate_instructions: bool = False,
        input_size: int = 224,
    ) -> None:
        self.ga_config = ga_config
        self.fitness_mode = fitness_mode
        self.generate_instructions = generate_instructions
        self.input_size = input_size
        self._graphs: Dict[str, Graph] = {}
        self._results: Dict[SweepPoint, CompilationResult] = {}

    # ------------------------------------------------------------------
    def graph(self, model: str) -> Graph:
        """Build (and cache) the model graph for a model name."""
        if model not in self._graphs:
            kwargs = {} if model == "lenet5" else {"input_size": self.input_size}
            self._graphs[model] = build_model(model, **kwargs)
        return self._graphs[model]

    def run_point(self, point: SweepPoint) -> CompilationResult:
        """Compile and simulate one sweep point (cached)."""
        if point in self._results:
            return self._results[point]
        chip = get_chip_config(point.chip)
        options = CompilerOptions(
            scheme=point.scheme,
            batch_size=point.batch_size,
            ga_config=self.ga_config,
            fitness_mode=self.fitness_mode,
            generate_instructions=self.generate_instructions,
        )
        result = CompassCompiler(chip, options).compile(self.graph(point.model))
        self._results[point] = result
        return result

    def run(
        self,
        models: Iterable[str],
        chips: Iterable[str],
        schemes: Iterable[str],
        batch_sizes: Iterable[int],
    ) -> List[Dict[str, object]]:
        """Run the full cross product and return summary rows."""
        rows: List[Dict[str, object]] = []
        for model in models:
            for chip in chips:
                for batch in batch_sizes:
                    for scheme in schemes:
                        point = SweepPoint(model=model, chip=chip, scheme=scheme, batch_size=batch)
                        result = self.run_point(point)
                        row = result.report.summary_row()
                        row["label"] = point.label
                        rows.append(row)
        return rows
