"""Parallel sweep execution across worker processes.

A figure sweep is a cross product of independent (model, chip, scheme,
batch) points; nothing but the shared span table couples them.  The
:class:`ParallelSweepRunner` fans the work across a
:class:`concurrent.futures.ProcessPoolExecutor`, chunked by (model, chip)
pair so every worker builds each decomposition once and its chunk shares
one span table — the same amortisation the serial runner gets, minus the
cross-pair sharing.

The serial :class:`~repro.evaluation.sweeps.SweepRunner` stays the default
everywhere; parallel execution is opt-in (pass a runner explicitly or set
``REPRO_PARALLEL_SWEEPS=1``, see :func:`repro.evaluation.experiments.make_sweep_runner`)
and falls back to the serial path when only one worker is available or the
process pool cannot be created (restricted environments, missing fork).
Row order and row values are identical to the serial runner's — each point
is compiled with the same deterministic seed in whichever process it lands.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.fitness import FitnessMode
from repro.core.ga import GAConfig
from repro.evaluation.sweeps import SweepPoint, SweepRunner

#: one unit of parallel work: all (scheme, batch) points of one (model, chip)
_Chunk = Tuple[str, str, Tuple[Tuple[str, int], ...]]


def _run_chunk(payload) -> List[Dict[str, object]]:
    """Worker entry point: run one (model, chip) chunk serially in-process."""
    (model, chip, points, ga_config, fitness_mode, generate_instructions,
     input_size, optimizer) = payload
    runner = SweepRunner(
        ga_config=ga_config,
        fitness_mode=fitness_mode,
        generate_instructions=generate_instructions,
        input_size=input_size,
        optimizer=optimizer,
    )
    rows: List[Dict[str, object]] = []
    for scheme, batch in points:
        point = SweepPoint(model=model, chip=chip, scheme=scheme, batch_size=batch)
        result = runner.run_point(point)
        row = result.report.summary_row()
        row["label"] = point.label
        rows.append(row)
    return rows


class ParallelSweepRunner:
    """Drop-in sweep runner fanning (model, chip) chunks across processes.

    Mirrors :meth:`repro.evaluation.sweeps.SweepRunner.run`; results are
    reassembled in the serial runner's deterministic order (model → chip →
    batch → scheme).
    """

    def __init__(
        self,
        ga_config: GAConfig = GAConfig(),
        fitness_mode: FitnessMode = FitnessMode.LATENCY,
        generate_instructions: bool = False,
        input_size: int = 224,
        max_workers: Optional[int] = None,
        optimizer: str = "dp",
    ) -> None:
        self.ga_config = ga_config
        self.fitness_mode = fitness_mode
        self.generate_instructions = generate_instructions
        self.input_size = input_size
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        #: partition-search engine forwarded to every worker's serial runner
        self.optimizer = optimizer

    # ------------------------------------------------------------------
    def _serial_runner(self) -> SweepRunner:
        return SweepRunner(
            ga_config=self.ga_config,
            fitness_mode=self.fitness_mode,
            generate_instructions=self.generate_instructions,
            input_size=self.input_size,
            optimizer=self.optimizer,
        )

    def run(
        self,
        models: Iterable[str],
        chips: Iterable[str],
        schemes: Iterable[str],
        batch_sizes: Iterable[int],
    ) -> List[Dict[str, object]]:
        """Run the full cross product and return summary rows (serial order)."""
        models = list(models)
        chips = list(chips)
        schemes = list(schemes)
        batch_sizes = list(batch_sizes)
        points = tuple(
            (scheme, batch) for batch in batch_sizes for scheme in schemes
        )
        chunks = [(model, chip) for model in models for chip in chips]

        if self.max_workers <= 1 or len(chunks) <= 1:
            return self._serial_runner().run(models, chips, schemes, batch_sizes)

        payloads = [
            (model, chip, points, self.ga_config, self.fitness_mode,
             self.generate_instructions, self.input_size, self.optimizer)
            for model, chip in chunks
        ]
        workers = min(self.max_workers, len(payloads))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk_rows = list(pool.map(_run_chunk, payloads))
        except (OSError, PermissionError, BrokenProcessPool):
            # restricted environment (no fork/spawn, killed workers):
            # serial fallback — worker-side exceptions propagate as-is
            return self._serial_runner().run(models, chips, schemes, batch_sizes)

        rows: List[Dict[str, object]] = []
        for per_chunk in chunk_rows:
            rows.extend(per_chunk)
        return rows
