"""Process-wide registry of model graphs and decompositions.

Every experiment, benchmark and sweep that works on the paper's workloads
needs the same handful of (model, chip) decompositions.  Decompositions are
where the span-table engine (:mod:`repro.perf`) attaches its caches, so
sharing them process-wide means a partition span profiled by *any* consumer
— an ablation benchmark, the Fig. 6 sweep, a GA convergence run — is free
for every later consumer in the same process.

Graphs and decompositions are immutable after construction, so sharing is
safe; failed decompositions (model too large for the chip) are not cached
and re-raise for every caller, preserving ``decompose_model`` semantics.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.decomposition import ModelDecomposition, decompose_model
from repro.core.validity import ValidityMap
from repro.graph.graph import Graph
from repro.hardware.config import get_chip_config
from repro.models import build_model

_GRAPHS: Dict[Tuple[str, int], Graph] = {}
_DECOMPOSITIONS: Dict[Tuple[str, int, str, int, int],
                      Tuple[ModelDecomposition, ValidityMap]] = {}


def shared_graph(model: str, input_size: int = 224) -> Graph:
    """Build (and cache process-wide) the graph of a named model."""
    key = (model, input_size)
    graph = _GRAPHS.get(key)
    if graph is None:
        kwargs = {} if model == "lenet5" else {"input_size": input_size}
        graph = build_model(model, **kwargs)
        _GRAPHS[key] = graph
    return graph


def shared_decomposition(
    model: str,
    chip_name: str,
    input_size: int = 224,
    weight_bits: int = 4,
    activation_bits: int = 4,
) -> Tuple[ModelDecomposition, ValidityMap]:
    """Decomposition + validity map of a (model, chip) pair, cached process-wide.

    The returned decomposition carries the shared span table, so all callers
    amortise partition-span profiling against each other.
    """
    key = (model, input_size, chip_name, weight_bits, activation_bits)
    entry = _DECOMPOSITIONS.get(key)
    if entry is None:
        chip = get_chip_config(chip_name)
        decomposition = decompose_model(
            shared_graph(model, input_size), chip,
            weight_bits=weight_bits, activation_bits=activation_bits,
        )
        entry = (decomposition, ValidityMap(decomposition))
        _DECOMPOSITIONS[key] = entry
    return entry


def shared_span_matrix(
    model: str,
    chip_name: str,
    input_size: int = 224,
    weight_bits: int = 4,
    activation_bits: int = 4,
):
    """The dense :class:`~repro.perf.spanmatrix.SpanMatrix` of a shared pair.

    Convenience accessor for benchmarks and experiments that want to warm or
    inspect the dense engine directly; the matrix (and the span table under
    it) is attached to the shared decomposition, so it is the same object
    every evaluator on that decomposition uses.
    """
    from repro.perf.spanmatrix import span_matrix_for

    decomposition, _ = shared_decomposition(
        model, chip_name, input_size=input_size,
        weight_bits=weight_bits, activation_bits=activation_bits,
    )
    return span_matrix_for(decomposition)


def shared_search(
    model: str,
    chip_name: str,
    optimizer: str = "dp",
    batch_size: int = 1,
    mode=None,
    input_size: int = 224,
    weight_bits: int = 4,
    activation_bits: int = 4,
    **search_kwargs,
):
    """A :class:`~repro.search.base.PartitionSearch` over the shared pair.

    Builds the engine on the process-wide decomposition + validity map, so
    every search on a (model, chip) pair — whatever the engine — routes
    through the same shared span table and dense span matrix: the DP's full
    triangle fill makes every later GA / beam / annealing run on the pair
    pure gathers.
    """
    from repro.core.fitness import FitnessEvaluator, FitnessMode
    from repro.search import make_search

    decomposition, validity = shared_decomposition(
        model, chip_name, input_size=input_size,
        weight_bits=weight_bits, activation_bits=activation_bits,
    )
    evaluator = FitnessEvaluator(
        decomposition, batch_size=batch_size,
        mode=mode if mode is not None else FitnessMode.LATENCY,
    )
    return make_search(optimizer, decomposition, evaluator, validity, **search_kwargs)


_PLAN_CACHES: Dict[Tuple[str, object], object] = {}


def shared_plan_cache(optimizer: str = "dp", mode=None, capacity: int = 256):
    """A process-wide :class:`~repro.serve.plans.PlanCache` per configuration.

    Serving experiments and benchmarks that run in one process share plans
    the same way they share decompositions: a plan compiled by any consumer
    (for one ``(optimizer, fitness mode)`` configuration) is a cache hit for
    every later consumer.  The cache compiles through
    :func:`shared_decomposition`, so its misses also warm the span engine
    for everything else in the process.

    The first call for a configuration fixes the cache's capacity; a later
    call asking for a different capacity raises rather than silently handing
    back a cache with different eviction behaviour than requested.
    """
    from repro.core.fitness import FitnessMode
    from repro.serve.plans import PlanCache

    mode = mode if mode is not None else FitnessMode.LATENCY
    key = (optimizer, mode)
    cache = _PLAN_CACHES.get(key)
    if cache is None:
        cache = PlanCache(capacity=capacity, optimizer=optimizer, mode=mode)
        _PLAN_CACHES[key] = cache
    elif cache.capacity != capacity:
        raise ValueError(
            f"shared plan cache for {key} already exists with capacity "
            f"{cache.capacity}; requested {capacity}"
        )
    return cache


def clear_registry() -> None:
    """Drop all cached graphs, decompositions and plan caches (mainly for tests).

    Span tables and matrices attach to the decompositions, so dropping the
    decompositions drops the whole cache hierarchy with them.
    """
    _GRAPHS.clear()
    _DECOMPOSITIONS.clear()
    _PLAN_CACHES.clear()
