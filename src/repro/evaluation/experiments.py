"""Experiment definitions: one function per table/figure of the paper.

All functions return plain Python data structures (rows of dictionaries or
numpy arrays) so that benchmarks can assert on them and examples can print
them.  The heavyweight sweeps (Fig. 6) accept an :class:`ExperimentConfig`
whose ``fast`` preset shrinks the GA and the batch-size list to keep CI fast;
the paper-scale settings are the defaults of :class:`GAConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import envflags
from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.compiler import CompilerOptions, CompassCompiler
from repro.core.decomposition import decompose_model
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.ga import CompassGA, GAConfig, GAResult
from repro.core.validity import ValidityMap
from repro.evaluation.parallel import ParallelSweepRunner
from repro.evaluation.registry import shared_decomposition, shared_graph
from repro.evaluation.sweeps import SweepPoint, SweepRunner
from repro.hardware.config import CHIP_PRESETS, get_chip_config, hardware_configuration_table
from repro.models import build_model

#: The three benchmark networks of the paper (Table II).
PAPER_MODELS = ("vgg16", "resnet18", "squeezenet")
#: The three chip configurations of the paper (Table I).
PAPER_CHIPS = ("S", "M", "L")
#: Batch sizes evaluated in the paper (Figs. 6, 8, 9).
PAPER_BATCH_SIZES = (1, 2, 4, 8, 16)
#: Partitioning schemes compared in the paper.
PAPER_SCHEMES = ("greedy", "layerwise", "compass")


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared configuration for the experiment suite."""

    models: Sequence[str] = PAPER_MODELS
    chips: Sequence[str] = PAPER_CHIPS
    batch_sizes: Sequence[int] = PAPER_BATCH_SIZES
    schemes: Sequence[str] = PAPER_SCHEMES
    ga_config: GAConfig = field(default_factory=GAConfig)
    input_size: int = 224
    seed: int = 0

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """Reduced configuration for CI and pytest-benchmark runs.

        The GA population/generation counts are scaled down (the paper uses
        100x30); the qualitative ordering between schemes is preserved, only
        the search is shallower.
        """
        return cls(
            batch_sizes=(1, 4, 16),
            ga_config=GAConfig(
                population_size=24, generations=8, n_select=6, n_mutate=18,
                early_stop_patience=4, seed=0,
            ),
            input_size=224,
        )


def make_sweep_runner(
    config: "ExperimentConfig",
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> Union[SweepRunner, ParallelSweepRunner]:
    """Sweep runner for an experiment configuration.

    Serial by default.  Pass ``parallel=True`` (or set the environment
    variable ``REPRO_PARALLEL_SWEEPS`` to a non-empty value other than
    ``0``) to fan independent (model, chip) sweep chunks across worker
    processes; the parallel runner itself falls back to the serial path
    when only one worker is available.
    """
    if parallel is None:
        parallel = envflags.parallel_sweeps_enabled()
    if parallel:
        return ParallelSweepRunner(
            ga_config=config.ga_config, input_size=config.input_size,
            max_workers=max_workers,
        )
    return SweepRunner(ga_config=config.ga_config, input_size=config.input_size)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1_hardware_configuration() -> List[Dict[str, object]]:
    """Rows of Table I: the S/M/L chip configurations."""
    return hardware_configuration_table()


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
def table2_model_support(
    models: Sequence[str] = PAPER_MODELS,
    chips: Sequence[str] = PAPER_CHIPS,
    weight_bits: int = 4,
) -> List[Dict[str, object]]:
    """Rows of Table II: per-model weight sizes and compiler support.

    "prev" reproduces the all-on-chip compilers (PUMA/PIMCOMP): a model is
    supported only if a single copy of all its weights fits on the chip.
    "ours" is COMPASS: supported whenever the model can be decomposed into
    partition units (i.e. every unit fits within one core).
    """
    rows: List[Dict[str, object]] = []
    for model in models:
        graph = shared_graph(model)
        linear_mb = graph.linear_weight_bytes(weight_bits) / 2 ** 20
        conv_mb = graph.conv_weight_bytes(weight_bits) / 2 ** 20
        total_mb = graph.crossbar_weight_bytes(weight_bits) / 2 ** 20
        row: Dict[str, object] = {
            "network": model,
            "linear_mb": round(linear_mb, 3),
            "conv_mb": round(conv_mb, 3),
            "total_mb": round(total_mb, 3),
        }
        for chip_name in chips:
            chip = get_chip_config(chip_name)
            fits_fully = graph.crossbar_weight_bytes(weight_bits) <= chip.weight_capacity_bytes
            try:
                decompose_model(graph, chip, weight_bits=weight_bits)
                ours = True
            except Exception:
                ours = False
            row[f"prev_{chip_name}"] = fits_fully
            row[f"ours_{chip_name}"] = ours
        row["prev"] = all(row[f"prev_{c}"] for c in chips)
        row["ours"] = all(row[f"ours_{c}"] for c in chips)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 5
# ----------------------------------------------------------------------
def fig5_validity_maps(
    models: Sequence[str] = PAPER_MODELS,
    chips: Sequence[str] = ("S", "L"),
) -> List[Dict[str, object]]:
    """Validity-map statistics for every (model, chip) pair of Fig. 5.

    Returns one row per pair with the number of partition units (M), the
    valid fraction of the (start, end) triangle and the boolean matrix
    itself (under the ``matrix`` key) for plotting.
    """
    rows: List[Dict[str, object]] = []
    for model in models:
        for chip_name in chips:
            decomposition, validity = shared_decomposition(model, chip_name)
            matrix = validity.as_matrix()
            rows.append(
                {
                    "model": model,
                    "chip": chip_name,
                    "num_units": decomposition.num_units,
                    "valid_fraction": validity.valid_fraction(),
                    "matrix": matrix,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 6
# ----------------------------------------------------------------------
def fig6_throughput_comparison(config: ExperimentConfig = ExperimentConfig.fast(),
                               runner: Optional[SweepRunner] = None) -> List[Dict[str, object]]:
    """Throughput of COMPASS vs greedy vs layerwise across the sweep (Fig. 6)."""
    runner = runner if runner is not None else make_sweep_runner(config)
    return runner.run(config.models, config.chips, config.schemes, config.batch_sizes)


def fig6_speedups(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per-configuration COMPASS speed-up over each baseline (from Fig. 6 rows)."""
    by_key: Dict[tuple, Dict[str, float]] = {}
    for row in rows:
        key = (row["model"], row["chip"], row["batch"])
        by_key.setdefault(key, {})[str(row["scheme"])] = float(row["throughput_ips"])
    speedups: List[Dict[str, object]] = []
    for (model, chip, batch), schemes in sorted(by_key.items()):
        if "compass" not in schemes:
            continue
        entry: Dict[str, object] = {"model": model, "chip": chip, "batch": batch}
        for baseline in ("greedy", "layerwise"):
            if baseline in schemes and schemes[baseline] > 0:
                entry[f"speedup_vs_{baseline}"] = schemes["compass"] / schemes[baseline]
        speedups.append(entry)
    return speedups


# ----------------------------------------------------------------------
# Fig. 7
# ----------------------------------------------------------------------
def fig7_latency_breakdown(
    model: str = "resnet18",
    chip_name: str = "M",
    batch_size: int = 16,
    ga_config: Optional[GAConfig] = None,
    input_size: int = 224,
) -> Dict[str, Dict[str, object]]:
    """Per-partition latency breakdown of "ResNet18-M-16" for every scheme.

    Returns a mapping scheme -> {"latencies_ms": [...], "total_ms": float,
    "first_partition_share": float}.
    """
    graph = shared_graph(model, input_size)
    chip = get_chip_config(chip_name)
    decomposition, validity = shared_decomposition(model, chip_name, input_size)
    ga_config = ga_config if ga_config is not None else ExperimentConfig.fast().ga_config
    breakdown: Dict[str, Dict[str, object]] = {}
    for scheme in PAPER_SCHEMES:
        options = CompilerOptions(
            scheme=scheme, batch_size=batch_size, ga_config=ga_config,
            generate_instructions=False,
        )
        result = CompassCompiler(chip, options).compile(
            graph, decomposition=decomposition, validity=validity)
        latencies = result.report.partition_latencies_ns()
        total = sum(latencies)
        breakdown[scheme] = {
            "latencies_ms": [v * 1e-6 for v in latencies],
            "total_ms": total * 1e-6,
            "num_partitions": len(latencies),
            "first_partition_share": (latencies[0] / total) if total else 0.0,
        }
    return breakdown


# ----------------------------------------------------------------------
# Fig. 8
# ----------------------------------------------------------------------
def fig8_energy_and_edp(
    model: str = "resnet18",
    chip_name: str = "S",
    batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
    ga_config: Optional[GAConfig] = None,
    input_size: int = 224,
) -> List[Dict[str, object]]:
    """Inference energy and EDP per sample for "ResNet18-S" (Fig. 8)."""
    graph = shared_graph(model, input_size)
    chip = get_chip_config(chip_name)
    decomposition, validity = shared_decomposition(model, chip_name, input_size)
    ga_config = ga_config if ga_config is not None else ExperimentConfig.fast().ga_config
    rows: List[Dict[str, object]] = []
    for batch in batch_sizes:
        for scheme in PAPER_SCHEMES:
            options = CompilerOptions(
                scheme=scheme, batch_size=batch, ga_config=ga_config,
                generate_instructions=False,
            )
            result = CompassCompiler(chip, options).compile(
                graph, decomposition=decomposition, validity=validity)
            rows.append(
                {
                    "label": f"{model}-{chip_name}-{batch}",
                    "scheme": scheme,
                    "batch": batch,
                    "energy_per_inf_mj": result.report.energy_per_inference_mj,
                    "edp_mj_ms": result.report.edp_per_inference,
                    "throughput_ips": result.report.throughput,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 9
# ----------------------------------------------------------------------
def fig9_weight_energy_vs_batch(
    model: str = "resnet18",
    chips: Sequence[str] = PAPER_CHIPS,
    batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
    scheme: str = "compass",
    ga_config: Optional[GAConfig] = None,
    input_size: int = 224,
) -> List[Dict[str, object]]:
    """Weight write/load energy relative to MVMUL energy (Fig. 9).

    One row per "Chip-Batch" combination with the energy of weight loads and
    weight writes normalised to the MVM energy of the same execution.
    """
    graph = shared_graph(model, input_size)
    ga_config = ga_config if ga_config is not None else ExperimentConfig.fast().ga_config
    rows: List[Dict[str, object]] = []
    for chip_name in chips:
        chip = get_chip_config(chip_name)
        decomposition, validity = shared_decomposition(model, chip_name, input_size)
        for batch in batch_sizes:
            options = CompilerOptions(
                scheme=scheme, batch_size=batch, ga_config=ga_config,
                generate_instructions=False,
            )
            result = CompassCompiler(chip, options).compile(
                graph, decomposition=decomposition, validity=validity)
            breakdown = result.report.energy_breakdown
            mvm = max(breakdown.mvm_pj, 1e-9)
            rows.append(
                {
                    "label": f"{chip_name}-{batch}",
                    "chip": chip_name,
                    "batch": batch,
                    "weight_load_rel": breakdown.weight_load_pj / mvm,
                    "weight_write_rel": breakdown.weight_write_pj / mvm,
                    "total_overhead_rel": (breakdown.weight_load_pj + breakdown.weight_write_pj) / mvm,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 10
# ----------------------------------------------------------------------
def fig10_ga_convergence(
    model: str = "resnet18",
    chip_name: str = "M",
    batch_size: int = 16,
    ga_config: Optional[GAConfig] = None,
    input_size: int = 224,
) -> GAResult:
    """Run the COMPASS GA for "ResNet18-M-16" and return its full history.

    The :class:`~repro.core.ga.GAResult` history carries, per generation, the
    fitness of every individual, its partition count and whether it was a
    selected survivor — exactly the data plotted in Fig. 10.
    """
    ga_config = ga_config if ga_config is not None else GAConfig(
        population_size=40, generations=20, n_select=10, n_mutate=30, seed=0
    )
    decomposition, validity = shared_decomposition(model, chip_name, input_size)
    evaluator = FitnessEvaluator(decomposition, batch_size=batch_size, mode=FitnessMode.LATENCY)
    ga = CompassGA(decomposition, evaluator, ga_config, validity)
    return ga.run()


def ga_paper_scale(
    model: str = "resnet18",
    chip_name: str = "M",
    batch_size: int = 16,
    mode: FitnessMode = FitnessMode.LATENCY,
    input_size: int = 224,
) -> GAResult:
    """Run the COMPASS GA at the paper's full scale (Sec. IV-A3 defaults).

    Population 100 over 30 generations — the search the paper actually ran,
    as opposed to the reduced presets the figure benchmarks use.  This is
    the workload of the full-size GA benchmark
    (``benchmarks/test_ga_fullsize.py``), exercising the dense span-matrix
    engine at realistic chromosome volumes.
    """
    decomposition, validity = shared_decomposition(model, chip_name, input_size)
    evaluator = FitnessEvaluator(decomposition, batch_size=batch_size, mode=mode)
    ga = CompassGA(decomposition, evaluator, GAConfig(), validity)
    return ga.run()


# ----------------------------------------------------------------------
# Optimality gap (beyond the paper): exact DP vs the GA
# ----------------------------------------------------------------------
def optimality_gap(
    models: Optional[Sequence[str]] = None,
    chips: Sequence[str] = PAPER_CHIPS,
    batch_sizes: Optional[Sequence[int]] = None,
    ga_config: Optional[GAConfig] = None,
    input_size: int = 224,
) -> List[Dict[str, object]]:
    """How far the GA lands from the true latency optimum, per configuration.

    The paper can only compare the GA against heuristic baselines; with the
    dense span matrix the latency-mode problem is solvable *exactly*
    (:class:`~repro.search.DPOptimalSearch`), so the GA's optimality gap is
    measurable.  One row per (model, chip, batch): the DP optimum, the GA
    best, and ``gap_pct = (ga / dp - 1) * 100``.  Both engines share one
    evaluator, so the DP's full triangle fill makes the GA run almost pure
    gathers.  Models that do not decompose on a chip yield a row with
    ``supported=False``.

    Defaults cover every registry model x the paper's three chips x the fast
    batch list; benchmarks pass subsets.
    """
    from repro.models import list_models
    from repro.search import DPOptimalSearch, GASearch

    models = list(list_models()) if models is None else list(models)
    batch_sizes = (
        tuple(ExperimentConfig.fast().batch_sizes)
        if batch_sizes is None else tuple(batch_sizes)
    )
    ga_config = ga_config if ga_config is not None else ExperimentConfig.fast().ga_config
    rows: List[Dict[str, object]] = []
    for model in models:
        for chip_name in chips:
            try:
                decomposition, validity = shared_decomposition(
                    model, chip_name, input_size=input_size
                )
            except Exception:
                for batch in batch_sizes:
                    rows.append(
                        {
                            "model": model, "chip": chip_name, "batch": batch,
                            "supported": False,
                        }
                    )
                continue
            for batch in batch_sizes:
                evaluator = FitnessEvaluator(
                    decomposition, batch_size=batch, mode=FitnessMode.LATENCY
                )
                dp = DPOptimalSearch(decomposition, evaluator, validity).run()
                ga = GASearch(
                    decomposition, evaluator, validity, ga_config=ga_config
                ).run()
                dp_fitness = dp.best_fitness
                rows.append(
                    {
                        "model": model,
                        "chip": chip_name,
                        "batch": batch,
                        "supported": True,
                        "dp_latency_ns": dp_fitness,
                        "ga_latency_ns": ga.best_fitness,
                        "gap_pct": (ga.best_fitness / dp_fitness - 1.0) * 100.0
                        if dp_fitness else 0.0,
                        "dp_partitions": dp.best_group.num_partitions,
                        "ga_partitions": ga.best_group.num_partitions,
                        "dp_span_evals": dp.evaluations,
                        "ga_evaluations": ga.evaluations,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# EDP Pareto-frontier sizes (beyond the paper): is the EDP DP exact?
# ----------------------------------------------------------------------
def edp_frontier_sizes(
    models: Optional[Sequence[str]] = None,
    chips: Sequence[str] = PAPER_CHIPS,
    batch_sizes: Sequence[int] = (1, 16),
    max_frontier: int = 0,
    input_size: int = 224,
) -> List[Dict[str, object]]:
    """Real Pareto-frontier sizes of the EDP DP across the registry.

    The EDP engine (:class:`~repro.search.DPOptimalSearch`) is exact while
    no per-position ``(latency, energy)`` frontier exceeds ``max_frontier``.
    This experiment runs the DP **uncapped** by default (``max_frontier=0``)
    and reports, per (model, chip, batch), the largest and mean frontier the
    problem really produces — closing the measurement half of the "EDP
    exactness" question: as long as every ``max_frontier_size`` stays below
    :data:`repro.search.dp.DEFAULT_MAX_FRONTIER`, the default-configured
    EDP DP is a certificate, not a heuristic, for the whole registry.

    One row per (model, chip, batch); models that do not decompose on a
    chip yield ``supported=False`` rows, mirroring :func:`optimality_gap`.
    """
    from repro.models import list_models
    from repro.search import DPOptimalSearch
    from repro.search.dp import DEFAULT_MAX_FRONTIER

    models = list(list_models()) if models is None else list(models)
    rows: List[Dict[str, object]] = []
    for model in models:
        for chip_name in chips:
            try:
                decomposition, validity = shared_decomposition(
                    model, chip_name, input_size=input_size
                )
            except Exception:
                for batch in batch_sizes:
                    rows.append(
                        {
                            "model": model, "chip": chip_name, "batch": batch,
                            "supported": False,
                        }
                    )
                continue
            for batch in batch_sizes:
                evaluator = FitnessEvaluator(
                    decomposition, batch_size=batch, mode=FitnessMode.EDP
                )
                search = DPOptimalSearch(
                    decomposition, evaluator, validity, max_frontier=max_frontier,
                )
                result = search.run()
                sizes = search.frontier_sizes or [0]
                largest = max(sizes)
                rows.append(
                    {
                        "model": model,
                        "chip": chip_name,
                        "batch": batch,
                        "supported": True,
                        "num_units": decomposition.num_units,
                        "max_frontier_size": largest,
                        "mean_frontier_size": sum(sizes) / len(sizes),
                        "exact": result.exact,
                        "fits_default_cap": largest <= DEFAULT_MAX_FRONTIER,
                        "edp_optimum": result.best_fitness,
                        "partitions": result.best_group.num_partitions,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------
class ExperimentSuite:
    """Convenience wrapper running all experiments with one configuration."""

    def __init__(self, config: ExperimentConfig = ExperimentConfig.fast()) -> None:
        self.config = config
        self.runner = SweepRunner(ga_config=config.ga_config, input_size=config.input_size)

    def table1(self) -> List[Dict[str, object]]:
        """Table I rows."""
        return table1_hardware_configuration()

    def table2(self) -> List[Dict[str, object]]:
        """Table II rows."""
        return table2_model_support(self.config.models, self.config.chips)

    def fig5(self) -> List[Dict[str, object]]:
        """Fig. 5 validity-map rows."""
        return fig5_validity_maps(self.config.models, ("S", "L"))

    def fig6(self) -> List[Dict[str, object]]:
        """Fig. 6 throughput rows."""
        return fig6_throughput_comparison(self.config, self.runner)

    def fig7(self) -> Dict[str, Dict[str, object]]:
        """Fig. 7 per-partition latency breakdown."""
        return fig7_latency_breakdown(ga_config=self.config.ga_config)

    def fig8(self) -> List[Dict[str, object]]:
        """Fig. 8 energy/EDP rows."""
        return fig8_energy_and_edp(
            batch_sizes=self.config.batch_sizes, ga_config=self.config.ga_config
        )

    def fig9(self) -> List[Dict[str, object]]:
        """Fig. 9 weight-energy rows."""
        return fig9_weight_energy_vs_batch(
            chips=self.config.chips, batch_sizes=self.config.batch_sizes,
            ga_config=self.config.ga_config,
        )

    def fig10(self) -> GAResult:
        """Fig. 10 GA convergence history."""
        return fig10_ga_convergence(ga_config=self.config.ga_config)

    def gap(self) -> List[Dict[str, object]]:
        """Optimality-gap rows (DP optimum vs GA best) for the suite config."""
        return optimality_gap(
            models=self.config.models,
            chips=self.config.chips,
            batch_sizes=self.config.batch_sizes,
            ga_config=self.config.ga_config,
        )
