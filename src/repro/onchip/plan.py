"""Per-partition execution plan: layer slices, replication and core mapping.

A :class:`PartitionPlan` is the on-chip view of one partition: for every
Conv/Linear layer with units in the partition it aggregates the units into a
*layer slice* (the columns of that layer mapped here), allocates weight
replication across the chip's crossbar budget, and packs the replicated tiles
onto cores.  The plan is consumed by the latency/energy estimator and by the
instruction scheduler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple

from repro.core.partition import Partition
from repro.hardware.chip import ChipConfig
from repro.mapping.core_mapping import CoreMapping, map_tiles_to_cores
from repro.mapping.geometry import WeightMatrixGeometry
from repro.mapping.replication import ReplicationPlan, allocate_replication_arrays


class LayerSlice(NamedTuple):
    """The portion of one layer mapped into a partition.

    A NamedTuple rather than a dataclass: slices are immutable (they feed
    process-wide span-table caches) and constructed on the span-profiling
    hot path, where tuple construction is measurably cheaper.
    """

    layer_name: str
    #: output columns of the layer held by this partition
    cols: int
    #: fraction of the layer's output columns held by this partition
    fraction: float
    #: weight bytes of one copy of this slice
    weight_bytes: int
    #: crossbars of one copy of this slice
    crossbars: int
    #: crossbar-tile MVM operations per sliding window
    tile_ops_per_window: int
    #: sliding windows per inference
    windows: int
    #: im2col rows of the layer (activated wordlines per MVM)
    rows: int
    #: names of attached non-crossbar layers executed with this slice
    attached: tuple

    def as_geometry(self) -> WeightMatrixGeometry:
        """View this slice as a geometry object for the mapping allocators."""
        return WeightMatrixGeometry(
            layer_name=self.layer_name,
            rows=self.rows,
            cols=self.cols,
            groups=1,
            crossbars_per_copy=self.crossbars,
            weights_per_copy=(self.weight_bytes * 8) // max(1, 4),
            windows=self.windows,
            weight_bytes=self.weight_bytes,
            row_tiles=max(1, self.tile_ops_per_window // max(1, math.ceil(self.cols / 64))),
            col_tiles=max(1, math.ceil(self.cols / 64)),
        )


@dataclass(slots=True)
class PartitionPlan:
    """Replication + core mapping decisions for one partition."""

    partition: Partition
    chip: ChipConfig
    slices: List[LayerSlice]
    replication: ReplicationPlan
    core_mapping: CoreMapping

    # ------------------------------------------------------------------
    @property
    def replicated_weight_bytes(self) -> int:
        """Weight bytes written into crossbars, counting every replica."""
        return sum(s.weight_bytes * self.replication.factor(s.layer_name) for s in self.slices)

    @property
    def single_copy_weight_bytes(self) -> int:
        """Weight bytes loaded from DRAM (replicas are broadcast on chip)."""
        return sum(s.weight_bytes for s in self.slices)

    @property
    def crossbars_used(self) -> int:
        """Crossbar tiles occupied including replication."""
        return self.replication.total_crossbars

    @property
    def core_utilization(self) -> float:
        """Fraction of crossbars used on active cores."""
        return self.core_mapping.utilization()

    def slice_for(self, layer_name: str) -> LayerSlice:
        """The slice of the given layer (raises KeyError if absent)."""
        for s in self.slices:
            if s.layer_name == layer_name:
                return s
        raise KeyError(f"layer {layer_name!r} has no slice in this partition")


def build_partition_plan(partition: Partition, chip: ChipConfig) -> PartitionPlan:
    """Build the on-chip plan (slices, replication, core mapping) for a partition.

    Replication honours the paper's validity conditions: factors are per
    layer (units from one kernel share a count) and the replicated total
    cannot exceed the chip's crossbar budget; the allocator keeps a single
    copy when the budget is tight.
    """
    decomposition = partition.decomposition
    index = decomposition.index
    attachments = decomposition.attachments
    ranges = decomposition.layer_unit_ranges
    geometries = decomposition.geometries
    cols_prefix = index.cols_prefix
    weight_prefix = index.weight_prefix
    crossbar_prefix = index.crossbar_prefix
    tile_ops_prefix = index.tile_ops_prefix
    layer_total_cols = index.layer_total_cols
    start = partition.start
    end = partition.end

    # Aggregate each layer's units in the span via the prefix-sum index: a
    # layer's units are contiguous, so every per-layer sum is O(1).
    slices: List[LayerSlice] = []
    for layer_name in partition.layer_names():
        layer_start, layer_end = ranges[layer_name]
        lo = layer_start if layer_start > start else start
        hi = layer_end if layer_end < end else end
        geom = geometries[layer_name]
        cols = cols_prefix[hi] - cols_prefix[lo]
        slices.append(
            LayerSlice(
                layer_name=layer_name,
                cols=cols,
                # == partition.layer_fraction(layer_name): same ints divided
                fraction=cols / layer_total_cols[layer_name],
                weight_bytes=weight_prefix[hi] - weight_prefix[lo],
                crossbars=crossbar_prefix[hi] - crossbar_prefix[lo],
                tile_ops_per_window=tile_ops_prefix[hi] - tile_ops_prefix[lo],
                windows=geom.windows,
                rows=geom.rows,
                attached=tuple(attachments.get(layer_name, [])),
            )
        )

    # The mapping allocators read only (name, windows, crossbars); feed them
    # directly instead of materialising WeightMatrixGeometry views.
    names = [s.layer_name for s in slices]
    copies = [s.crossbars for s in slices]
    replication = allocate_replication_arrays(
        names, [s.windows for s in slices], copies,
        crossbar_budget=chip.total_crossbars,
    )
    core_mapping = map_tiles_to_cores(names, copies, replication, chip)
    return PartitionPlan(
        partition=partition,
        chip=chip,
        slices=slices,
        replication=replication,
        core_mapping=core_mapping,
    )
