"""On-chip (per-partition) optimizer and performance estimator.

This plays the role PIMCOMP plays in the paper (Sec. III-C1): given a
partition that fits on chip, decide weight replication and core mapping, then
estimate the latency and energy of executing that partition for a batch of
inputs, including the weight-replacement phase and the DRAM accesses at the
partition boundary.  The COMPASS genetic algorithm uses these estimates as
its fitness oracle.
"""

from repro.onchip.plan import LayerSlice, PartitionPlan, build_partition_plan
from repro.onchip.estimator import (
    PartitionEstimate,
    PhaseLatency,
    PartitionEstimator,
)

__all__ = [
    "LayerSlice",
    "PartitionPlan",
    "build_partition_plan",
    "PartitionEstimate",
    "PhaseLatency",
    "PartitionEstimator",
]
