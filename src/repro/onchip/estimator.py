"""Latency and energy estimation of one partition's execution.

Model (Sec. II of the paper):

* Weight-replace phase: a single copy of the partition's weights is streamed
  from DRAM and broadcast-written into the crossbars of all replicas.  DRAM
  streaming and crossbar programming overlap, so the phase takes the maximum
  of the two.
* Weight-reuse (compute) phase: the partition's layers execute as a pipeline
  over the batch.  Each layer-slice stage needs
  ``ceil(windows / replication) x ceil(tile_ops / crossbars) x t_mvm`` of
  matrix-unit time per sample plus VFU time for its attached layers; entry
  loads and exit stores form extra pipeline stages bound by DRAM bandwidth.
  Pipeline latency for a batch of B samples is ``fill + (B-1) x bottleneck``.

The estimator returns both a per-phase latency breakdown (used for Fig. 7)
and a full :class:`~repro.hardware.power.EnergyBreakdown` (Figs. 8 and 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.partition import Partition, PartitionIO
from repro.hardware.chip import ChipConfig
from repro.hardware.dram import DRAMConfig, DRAMModel, LPDDR3_8GB
from repro.hardware.power import EnergyBreakdown, PowerModel
from repro.onchip.plan import LayerSlice, PartitionPlan, build_partition_plan


@dataclass
class PhaseLatency:
    """Latency of each execution phase of one partition, in nanoseconds."""

    weight_load_ns: float = 0.0
    weight_write_ns: float = 0.0
    weight_replace_ns: float = 0.0
    input_load_ns: float = 0.0
    compute_ns: float = 0.0
    output_store_ns: float = 0.0
    pipeline_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """End-to-end latency of the partition: weight replace + pipeline."""
        return self.weight_replace_ns + self.pipeline_ns


@dataclass
class PartitionEstimate:
    """Complete performance/energy estimate for one partition."""

    plan: PartitionPlan
    io: PartitionIO
    batch_size: int
    latency: PhaseLatency
    energy: EnergyBreakdown
    #: per-sample service time of every pipeline stage, keyed by stage name
    stage_latency_ns: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def partition(self) -> Partition:
        """The partition this estimate describes."""
        return self.plan.partition

    @property
    def latency_ns(self) -> float:
        """Total latency of the partition for the whole batch."""
        return self.latency.total_ns

    @property
    def energy_pj(self) -> float:
        """Total energy of the partition for the whole batch."""
        return self.energy.total_pj

    @property
    def edp(self) -> float:
        """Energy-delay product of this partition (pJ * ns)."""
        return self.energy_pj * self.latency_ns

    @property
    def latency_per_sample_ns(self) -> float:
        """Amortised latency per sample."""
        return self.latency_ns / self.batch_size

    @property
    def energy_per_sample_pj(self) -> float:
        """Amortised energy per sample."""
        return self.energy_pj / self.batch_size


class PartitionEstimator:
    """Estimates latency/energy of partitions on a given chip.

    A single estimator instance caches nothing across calls and is safe to
    reuse for many partitions; the genetic algorithm creates one per run.
    """

    def __init__(
        self,
        chip: ChipConfig,
        dram_config: DRAMConfig = LPDDR3_8GB,
        batch_size: int = 1,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.chip = chip
        self.batch_size = batch_size
        self.dram = DRAMModel(dram_config)
        self.power = PowerModel(chip)

    # ------------------------------------------------------------------
    # stage-level helpers
    # ------------------------------------------------------------------
    def _slice_compute_latency_ns(self, layer_slice: LayerSlice, replication: int) -> float:
        """Matrix-unit + VFU time for one sample of one layer slice."""
        xbar = self.chip.core.crossbar
        core = self.chip.core
        windows_per_replica = math.ceil(layer_slice.windows / max(1, replication))
        serial_factor = math.ceil(
            layer_slice.tile_ops_per_window / max(1, layer_slice.crossbars)
        )
        mvm_ns = windows_per_replica * serial_factor * xbar.mvm_latency_ns

        graph = None
        vfu_elements = 0
        # partial-sum accumulation across row tiles
        row_tiles = math.ceil(layer_slice.rows / xbar.weight_rows)
        if row_tiles > 1:
            vfu_elements += (row_tiles - 1) * layer_slice.cols * layer_slice.windows
        vfu_ns = core.vfu_latency_ns(vfu_elements)
        return mvm_ns + vfu_ns

    def _attached_vfu_latency_ns(self, partition: Partition, layer_slice: LayerSlice) -> float:
        """VFU time of the non-crossbar layers attached to a slice, per sample."""
        graph = partition.decomposition.graph
        core = self.chip.core
        elements = 0
        for name in layer_slice.attached:
            node = graph.node(name)
            assert node.output_shape is not None
            elements += node.output_shape.num_elements
        # a partition holding a slice of the layer only processes its share
        return core.vfu_latency_ns(int(elements * max(layer_slice.fraction, 0.0)))

    def _intercore_latency_ns(self, partition: Partition, plan: PartitionPlan,
                              layer_slice: LayerSlice) -> float:
        """Bus time to gather this slice's inputs from producer cores, per sample."""
        graph = partition.decomposition.graph
        bits = partition.decomposition.activation_bits
        node = graph.node(layer_slice.layer_name)
        owned = partition.owned_nodes()
        bus = self.chip.interconnect
        total_ns = 0.0
        for src in node.inputs:
            if src not in owned:
                continue  # comes from DRAM, accounted in the load stage
            src_node = graph.node(src)
            assert src_node.output_shape is not None
            num_bytes = src_node.output_shape.size_bytes(bits)
            total_ns += bus.transfer_time_ns(num_bytes)
        return total_ns

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def estimate(self, partition: Partition, plan: Optional[PartitionPlan] = None,
                 batch_size: Optional[int] = None) -> PartitionEstimate:
        """Estimate latency and energy of one partition for a batch."""
        batch = batch_size if batch_size is not None else self.batch_size
        if batch <= 0:
            raise ValueError("batch_size must be positive")
        plan = plan if plan is not None else build_partition_plan(partition, self.chip)
        io = partition.io()
        chip = self.chip
        xbar = chip.core.crossbar
        power = self.power

        # ---------------- pipeline stage latencies (per sample) ----------
        stages: Dict[str, float] = {}
        load_ns = self.dram.bulk_transfer_latency_ns(io.load_bytes, sequential=True)
        # several entry nodes mean scattered accesses; add a per-entry penalty
        load_ns += max(0, io.num_entries - 1) * chip.interconnect.transfer_latency_ns
        stages["__load__"] = load_ns

        for layer_slice in plan.slices:
            replication = plan.replication.factor(layer_slice.layer_name)
            stage_ns = self._slice_compute_latency_ns(layer_slice, replication)
            stage_ns += self._attached_vfu_latency_ns(partition, layer_slice)
            stage_ns += self._intercore_latency_ns(partition, plan, layer_slice)
            stages[layer_slice.layer_name] = stage_ns

        store_ns = self.dram.bulk_transfer_latency_ns(io.store_bytes, sequential=True)
        store_ns += max(0, io.num_exits - 1) * chip.interconnect.transfer_latency_ns
        stages["__store__"] = store_ns

        fill_ns = sum(stages.values())
        bottleneck_ns = max(stages.values()) if stages else 0.0
        pipeline_ns = fill_ns + (batch - 1) * bottleneck_ns

        # ---------------- weight-replace phase ----------------------------
        single_copy_bytes = plan.single_copy_weight_bytes
        replicated_bytes = plan.replicated_weight_bytes
        weight_load_ns = self.dram.bulk_transfer_latency_ns(single_copy_bytes, sequential=True)
        max_core_crossbars = max(
            (a.crossbars_used for a in plan.core_mapping.assignments), default=0
        )
        weight_write_ns = max_core_crossbars * xbar.write_latency_full_ns
        weight_replace_ns = max(weight_load_ns, weight_write_ns)

        latency = PhaseLatency(
            weight_load_ns=weight_load_ns,
            weight_write_ns=weight_write_ns,
            weight_replace_ns=weight_replace_ns,
            input_load_ns=load_ns * batch,
            compute_ns=pipeline_ns - (load_ns + store_ns) * batch
            if pipeline_ns > (load_ns + store_ns) * batch
            else pipeline_ns,
            output_store_ns=store_ns * batch,
            pipeline_ns=pipeline_ns,
        )

        # ---------------- energy ------------------------------------------
        energy = EnergyBreakdown()
        weight_bits = partition.decomposition.weight_bits
        replicated_weights = (replicated_bytes * 8) // weight_bits
        energy.weight_write_pj = power.weight_write_energy_pj(replicated_weights)
        energy.weight_load_pj = (
            self.dram.bulk_transfer_energy_pj(single_copy_bytes, is_write=False, sequential=True)
            + power.interconnect_energy_pj(single_copy_bytes)
        )

        mvm_pj = 0.0
        vfu_pj = 0.0
        local_pj = 0.0
        intercore_pj = 0.0
        bits = partition.decomposition.activation_bits
        graph = partition.decomposition.graph
        for layer_slice in plan.slices:
            tile_mvms = layer_slice.windows * layer_slice.tile_ops_per_window
            active_rows = min(layer_slice.rows, xbar.weight_rows)
            mvm_pj += power.mvm_energy_pj(tile_mvms, active_rows)
            # attached VFU work
            elements = 0
            for name in layer_slice.attached:
                node = graph.node(name)
                assert node.output_shape is not None
                elements += node.output_shape.num_elements
            vfu_pj += power.vfu_energy_pj(int(elements * layer_slice.fraction))
            # local memory traffic: inputs and outputs of the slice
            node = graph.node(layer_slice.layer_name)
            assert node.output_shape is not None
            out_bytes = int(node.output_shape.size_bytes(bits) * layer_slice.fraction)
            in_bytes = sum(
                graph.node(src).output_shape.size_bytes(bits) for src in node.inputs
            )
            local_pj += power.local_memory_energy_pj(in_bytes + out_bytes)
            intercore_pj += power.interconnect_energy_pj(in_bytes)
        energy.mvm_pj = mvm_pj * batch
        energy.vfu_pj = vfu_pj * batch
        energy.local_memory_pj = local_pj * batch
        energy.interconnect_pj = intercore_pj * batch

        energy.data_load_pj = batch * (
            self.dram.bulk_transfer_energy_pj(io.load_bytes, is_write=False, sequential=True)
            + power.interconnect_energy_pj(io.load_bytes)
        )
        energy.data_store_pj = batch * (
            self.dram.bulk_transfer_energy_pj(io.store_bytes, is_write=True, sequential=True)
            + power.interconnect_energy_pj(io.store_bytes)
        )

        total_ns = latency.total_ns
        energy.static_pj = power.static_energy_pj(total_ns, plan.core_mapping.cores_used)
        energy.dram_background_pj = self.dram.config.background_power_mw * total_ns

        return PartitionEstimate(
            plan=plan,
            io=io,
            batch_size=batch,
            latency=latency,
            energy=energy,
            stage_latency_ns=stages,
        )
