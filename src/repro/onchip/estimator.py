"""Latency and energy estimation of one partition's execution.

Model (Sec. II of the paper):

* Weight-replace phase: a single copy of the partition's weights is streamed
  from DRAM and broadcast-written into the crossbars of all replicas.  DRAM
  streaming and crossbar programming overlap, so the phase takes the maximum
  of the two.
* Weight-reuse (compute) phase: the partition's layers execute as a pipeline
  over the batch.  Each layer-slice stage needs
  ``ceil(windows / replication) x ceil(tile_ops / crossbars) x t_mvm`` of
  matrix-unit time per sample plus VFU time for its attached layers; entry
  loads and exit stores form extra pipeline stages bound by DRAM bandwidth.
  Pipeline latency for a batch of B samples is ``fill + (B-1) x bottleneck``.

The estimator returns both a per-phase latency breakdown (used for Fig. 7)
and a full :class:`~repro.hardware.power.EnergyBreakdown` (Figs. 8 and 9).

Estimation is split in two stages so the span-table engine
(:mod:`repro.perf`) can amortise work across batch sizes:

* :meth:`PartitionEstimator.profile` walks the partition once and produces a
  :class:`SpanProfile` — every batch-independent quantity (plan, I/O, the
  per-sample pipeline stage latencies and per-sample energy terms).
* :meth:`PartitionEstimator.estimate_from_profile` turns a profile into a
  :class:`PartitionEstimate` for a concrete batch size with O(1) arithmetic.

``estimate()`` composes the two, so the single-call path is unchanged and
the split is bit-identical to the historical monolithic implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.partition import Partition, PartitionIO
from repro.hardware.chip import ChipConfig
from repro.hardware.dram import DRAMConfig, DRAMModel, LPDDR3_8GB
from repro.hardware.power import EnergyBreakdown, PowerModel
from repro.mapping.core_mapping import max_core_crossbars_only
from repro.mapping.replication import replication_factor_list
from repro.onchip.plan import LayerSlice, PartitionPlan, build_partition_plan


@dataclass(slots=True)
class PhaseLatency:
    """Latency of each execution phase of one partition, in nanoseconds."""

    weight_load_ns: float = 0.0
    weight_write_ns: float = 0.0
    weight_replace_ns: float = 0.0
    input_load_ns: float = 0.0
    compute_ns: float = 0.0
    output_store_ns: float = 0.0
    pipeline_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """End-to-end latency of the partition: weight replace + pipeline."""
        return self.weight_replace_ns + self.pipeline_ns


@dataclass(slots=True)
class SpanProfile:
    """Batch-independent performance profile of one partition span.

    Everything here depends only on (partition, chip, DRAM config): the
    on-chip plan, the global-memory I/O, the per-sample pipeline stage
    latencies, the weight-replace phase, and the per-sample/per-batch-constant
    energy terms.  A :class:`PartitionEstimate` for any batch size is pure
    O(1) arithmetic over this profile.
    """

    plan: PartitionPlan
    io: PartitionIO
    #: per-sample service time of every pipeline stage, keyed by stage name
    stage_latency_ns: Dict[str, float]
    #: sum of all per-sample stage latencies (pipeline fill time)
    fill_ns: float
    #: slowest per-sample stage (pipeline bottleneck)
    bottleneck_ns: float
    #: per-sample entry-load and exit-store stage latencies
    load_ns: float
    store_ns: float
    #: weight-replace phase (batch independent)
    weight_load_ns: float
    weight_write_ns: float
    weight_replace_ns: float
    #: active cores (for static energy)
    cores_used: int
    #: batch-independent energies
    weight_write_pj: float
    weight_load_pj: float
    #: per-sample energies (multiplied by the batch size)
    mvm_pj_per_sample: float
    vfu_pj_per_sample: float
    local_memory_pj_per_sample: float
    interconnect_pj_per_sample: float
    data_load_pj_per_sample: float
    data_store_pj_per_sample: float

    @property
    def partition(self) -> Partition:
        """The partition this profile describes."""
        return self.plan.partition


@dataclass(slots=True)
class PartitionEstimate:
    """Complete performance/energy estimate for one partition."""

    plan: PartitionPlan
    io: PartitionIO
    batch_size: int
    latency: PhaseLatency
    energy: EnergyBreakdown
    #: per-sample service time of every pipeline stage, keyed by stage name
    stage_latency_ns: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def partition(self) -> Partition:
        """The partition this estimate describes."""
        return self.plan.partition

    @property
    def latency_ns(self) -> float:
        """Total latency of the partition for the whole batch."""
        return self.latency.total_ns

    @property
    def energy_pj(self) -> float:
        """Total energy of the partition for the whole batch."""
        return self.energy.total_pj

    @property
    def edp(self) -> float:
        """Energy-delay product of this partition (pJ * ns)."""
        return self.energy_pj * self.latency_ns

    @property
    def latency_per_sample_ns(self) -> float:
        """Amortised latency per sample."""
        return self.latency_ns / self.batch_size

    @property
    def energy_per_sample_pj(self) -> float:
        """Amortised energy per sample."""
        return self.energy_pj / self.batch_size


class PartitionEstimator:
    """Estimates latency/energy of partitions on a given chip.

    A single estimator instance memoises only pure allocator results (the
    replication factors and max per-core occupancy of a ``(windows, copies)``
    geometry signature — many distinct spans clip their edge layers the same
    way) and is safe to reuse for many partitions; per-span caching lives in
    :class:`repro.perf.SpanTable`.
    """

    def __init__(
        self,
        chip: ChipConfig,
        dram_config: DRAMConfig = LPDDR3_8GB,
        batch_size: int = 1,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.chip = chip
        self.batch_size = batch_size
        self.dram = DRAMModel(dram_config)
        self.power = PowerModel(chip)
        #: (windows..., copies...) -> (factor list, max core crossbars); the
        #: allocators are pure functions of these (layer names only key the
        #: returned dict in the legacy API), so sharing across spans is exact
        self._allocation_memo: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]],
                                    Tuple[List[int], int]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def profile(self, partition: Partition,
                plan: Optional[PartitionPlan] = None) -> SpanProfile:
        """Walk one partition and compute its batch-independent profile.

        Per-sample stage latencies and energies are accumulated in a single
        pass over the plan's layer slices with the chip constants hoisted to
        locals — this is the innermost loop of span profiling.
        """
        plan = plan if plan is not None else build_partition_plan(partition, self.chip)
        io = partition.io()
        chip = self.chip
        core = chip.core
        xbar = core.crossbar
        power = self.power
        index = partition.decomposition.index
        owned = partition.owned_nodes()

        # hoisted chip constants
        mvm_latency_ns = xbar.mvm_latency_ns
        weight_rows = xbar.weight_rows
        vfu_throughput = core.vfu_count * core.vfu_elements_per_ns
        vfu_energy_per_element = core.vfu_energy_per_element_pj
        local_energy_per_byte = core.local_memory_energy_per_byte_pj
        bus = chip.interconnect
        bus_latency_ns = bus.transfer_latency_ns
        bus_bandwidth = bus.bandwidth_bytes_per_ns
        bus_energy_per_byte = bus.energy_per_byte_pj
        sizes = index.node_size_bytes
        node_inputs = index.node_inputs
        attached_elements = index.layer_attached_elements
        factor_of = plan.replication.factors.get
        ceil = math.ceil

        # hoisted I/O sums (the PartitionIO properties re-sum on every access)
        io_load_bytes = io.load_bytes
        io_store_bytes = io.store_bytes

        # ---------------- pipeline stage latencies (per sample) ----------
        stages: Dict[str, float] = {}
        load_ns = self.dram.bulk_transfer_latency_ns(io_load_bytes, sequential=True)
        # several entry nodes mean scattered accesses; add a per-entry penalty
        load_ns += max(0, io.num_entries - 1) * bus_latency_ns
        stages["__load__"] = load_ns

        single_copy_bytes = 0
        replicated_bytes = 0
        mvm_pj = 0.0
        vfu_pj = 0.0
        local_pj = 0.0
        intercore_pj = 0.0
        for layer_slice in plan.slices:
            layer_name = layer_slice.layer_name
            windows = layer_slice.windows
            fraction = layer_slice.fraction
            replication = factor_of(layer_name, 1)
            single_copy_bytes += layer_slice.weight_bytes
            replicated_bytes += layer_slice.weight_bytes * replication

            # matrix-unit time: windows round-robin over replicas, tile ops
            # serialised over the slice's crossbars
            windows_per_replica = ceil(windows / max(1, replication))
            serial_factor = ceil(
                layer_slice.tile_ops_per_window / max(1, layer_slice.crossbars)
            )
            stage_ns = windows_per_replica * serial_factor * mvm_latency_ns
            # partial-sum accumulation across row tiles
            row_tiles = ceil(layer_slice.rows / weight_rows)
            if row_tiles > 1:
                vfu_elements = (row_tiles - 1) * layer_slice.cols * windows
                if vfu_elements > 0:
                    stage_ns += vfu_elements / vfu_throughput
            # attached non-crossbar layers: this partition processes its share
            elements = attached_elements[layer_name]
            shared_elements = int(elements * max(fraction, 0.0))
            if shared_elements > 0:
                stage_ns += shared_elements / vfu_throughput
            # bus time to gather on-chip inputs from producer cores (inputs
            # coming from DRAM are accounted in the load stage)
            in_bytes = 0
            intercore_ns = 0.0
            for src in node_inputs[layer_name]:
                num_bytes = sizes[src]
                in_bytes += num_bytes
                if src in owned and num_bytes > 0:
                    intercore_ns += bus_latency_ns + num_bytes / bus_bandwidth
            stage_ns += intercore_ns
            stages[layer_name] = stage_ns

            # per-sample energies of the slice
            tile_mvms = windows * layer_slice.tile_ops_per_window
            active_rows = layer_slice.rows
            if active_rows > weight_rows:
                active_rows = weight_rows
            mvm_pj += tile_mvms * xbar.mvm_energy_for_rows(active_rows)
            vfu_pj += max(int(elements * fraction), 0) * vfu_energy_per_element
            out_bytes = int(sizes[layer_name] * fraction)
            local_pj += max(in_bytes + out_bytes, 0) * local_energy_per_byte
            intercore_pj += max(in_bytes, 0) * bus_energy_per_byte

        store_ns = self.dram.bulk_transfer_latency_ns(io_store_bytes, sequential=True)
        store_ns += max(0, io.num_exits - 1) * bus_latency_ns
        stages["__store__"] = store_ns

        fill_ns = sum(stages.values())
        bottleneck_ns = max(stages.values()) if stages else 0.0

        # ---------------- weight-replace phase ----------------------------
        weight_load_ns = self.dram.bulk_transfer_latency_ns(single_copy_bytes, sequential=True)
        max_core_crossbars = plan.core_mapping.max_core_crossbars
        weight_write_ns = max_core_crossbars * xbar.write_latency_full_ns
        weight_replace_ns = max(weight_load_ns, weight_write_ns)

        # ---------------- energy ------------------------------------------
        weight_bits = partition.decomposition.weight_bits
        replicated_weights = (replicated_bytes * 8) // weight_bits
        weight_write_pj = power.weight_write_energy_pj(replicated_weights)
        weight_load_pj = (
            self.dram.bulk_transfer_energy_pj(single_copy_bytes, is_write=False, sequential=True)
            + power.interconnect_energy_pj(single_copy_bytes)
        )

        data_load_pj = (
            self.dram.bulk_transfer_energy_pj(io_load_bytes, is_write=False, sequential=True)
            + power.interconnect_energy_pj(io_load_bytes)
        )
        data_store_pj = (
            self.dram.bulk_transfer_energy_pj(io_store_bytes, is_write=True, sequential=True)
            + power.interconnect_energy_pj(io_store_bytes)
        )

        return SpanProfile(
            plan=plan,
            io=io,
            stage_latency_ns=stages,
            fill_ns=fill_ns,
            bottleneck_ns=bottleneck_ns,
            load_ns=load_ns,
            store_ns=store_ns,
            weight_load_ns=weight_load_ns,
            weight_write_ns=weight_write_ns,
            weight_replace_ns=weight_replace_ns,
            cores_used=plan.core_mapping.cores_used,
            weight_write_pj=weight_write_pj,
            weight_load_pj=weight_load_pj,
            mvm_pj_per_sample=mvm_pj,
            vfu_pj_per_sample=vfu_pj,
            local_memory_pj_per_sample=local_pj,
            interconnect_pj_per_sample=intercore_pj,
            data_load_pj_per_sample=data_load_pj,
            data_store_pj_per_sample=data_store_pj,
        )

    def slim_profile(self, partition: Partition) -> "Tuple[float, float, float]":
        """Latency-only profile: ``(weight_replace_ns, fill_ns, bottleneck_ns)``.

        An exact replay of :meth:`profile` restricted to the three floats the
        scalar latency record (and the dense span matrix) needs: the slice
        aggregation, replication allocation and pipeline-stage arithmetic are
        identical operation for operation, but no plan/slice/core-mapping
        objects are built and every energy term is skipped.  The core mapping
        reduces to :func:`~repro.mapping.core_mapping.max_core_crossbars_only`
        (the only mapping quantity latency depends on).  Bit-identical to
        ``profile(partition)`` and reading the same three fields — pinned by
        the perf equivalence tests.
        """
        decomposition = partition.decomposition
        index = decomposition.index
        chip = self.chip
        core = chip.core
        xbar = core.crossbar
        ranges = decomposition.layer_unit_ranges
        geometries = decomposition.geometries
        cols_prefix = index.cols_prefix
        crossbar_prefix = index.crossbar_prefix
        tile_ops_prefix = index.tile_ops_prefix
        layer_total_cols = index.layer_total_cols
        start = partition.start
        end = partition.end

        # slice aggregation (parallel lists instead of LayerSlice objects)
        names = partition.layer_names()
        windows_list: List[int] = []
        copies: List[int] = []
        cols_list: List[int] = []
        fractions: List[float] = []
        rows_list: List[int] = []
        tile_ops_list: List[int] = []
        for layer_name in names:
            layer_start, layer_end = ranges[layer_name]
            lo = layer_start if layer_start > start else start
            hi = layer_end if layer_end < end else end
            geom = geometries[layer_name]
            cols = cols_prefix[hi] - cols_prefix[lo]
            cols_list.append(cols)
            fractions.append(cols / layer_total_cols[layer_name])
            copies.append(crossbar_prefix[hi] - crossbar_prefix[lo])
            tile_ops_list.append(tile_ops_prefix[hi] - tile_ops_prefix[lo])
            windows_list.append(geom.windows)
            rows_list.append(geom.rows)
        # layers in a span are distinct, so the unique-names allocator
        # applies; distinct spans sharing a geometry signature (same windows
        # and per-copy crossbars, i.e. same interior layers and same edge
        # clippings) share one allocation
        memo_key = (tuple(windows_list), tuple(copies))
        allocation = self._allocation_memo.get(memo_key)
        if allocation is None:
            factor_list = replication_factor_list(
                names, windows_list, copies, crossbar_budget=chip.total_crossbars
            )
            max_core_crossbars = max_core_crossbars_only(names, copies, factor_list, chip)
            self._allocation_memo[memo_key] = (factor_list, max_core_crossbars)
        else:
            factor_list, max_core_crossbars = allocation

        io = partition.io()
        owned = partition.owned_nodes()

        mvm_latency_ns = xbar.mvm_latency_ns
        weight_rows = xbar.weight_rows
        vfu_throughput = core.vfu_count * core.vfu_elements_per_ns
        bus = chip.interconnect
        bus_latency_ns = bus.transfer_latency_ns
        bus_bandwidth = bus.bandwidth_bytes_per_ns
        sizes = index.node_size_bytes
        node_inputs = index.node_inputs
        attached_elements = index.layer_attached_elements
        ceil = math.ceil

        load_ns = self.dram.bulk_transfer_latency_ns(io.load_bytes, sequential=True)
        load_ns += max(0, io.num_entries - 1) * bus_latency_ns
        stage_values = [load_ns]
        for i, layer_name in enumerate(names):
            windows = windows_list[i]
            windows_per_replica = ceil(windows / max(1, factor_list[i]))
            serial_factor = ceil(tile_ops_list[i] / max(1, copies[i]))
            stage_ns = windows_per_replica * serial_factor * mvm_latency_ns
            row_tiles = ceil(rows_list[i] / weight_rows)
            if row_tiles > 1:
                vfu_elements = (row_tiles - 1) * cols_list[i] * windows
                if vfu_elements > 0:
                    stage_ns += vfu_elements / vfu_throughput
            shared_elements = int(attached_elements[layer_name] * max(fractions[i], 0.0))
            if shared_elements > 0:
                stage_ns += shared_elements / vfu_throughput
            intercore_ns = 0.0
            for src in node_inputs[layer_name]:
                num_bytes = sizes[src]
                if src in owned and num_bytes > 0:
                    intercore_ns += bus_latency_ns + num_bytes / bus_bandwidth
            stage_ns += intercore_ns
            stage_values.append(stage_ns)
        store_ns = self.dram.bulk_transfer_latency_ns(io.store_bytes, sequential=True)
        store_ns += max(0, io.num_exits - 1) * bus_latency_ns
        stage_values.append(store_ns)

        fill_ns = sum(stage_values)
        bottleneck_ns = max(stage_values)

        # single-copy weight bytes: layer ranges tile the span, so the sum of
        # per-slice weight bytes is one prefix-sum difference (exact ints)
        weight_prefix = index.weight_prefix
        single_copy_bytes = weight_prefix[end] - weight_prefix[start]
        weight_load_ns = self.dram.bulk_transfer_latency_ns(single_copy_bytes, sequential=True)
        weight_write_ns = max_core_crossbars * xbar.write_latency_full_ns
        weight_replace_ns = max(weight_load_ns, weight_write_ns)
        return (weight_replace_ns, fill_ns, bottleneck_ns)

    def estimate_from_profile(self, profile: SpanProfile, batch_size: int) -> PartitionEstimate:
        """Finalise a batch-independent profile into an estimate — O(1)."""
        batch = batch_size
        if batch <= 0:
            raise ValueError("batch_size must be positive")
        load_ns = profile.load_ns
        store_ns = profile.store_ns
        pipeline_ns = profile.fill_ns + (batch - 1) * profile.bottleneck_ns

        latency = PhaseLatency(
            weight_load_ns=profile.weight_load_ns,
            weight_write_ns=profile.weight_write_ns,
            weight_replace_ns=profile.weight_replace_ns,
            input_load_ns=load_ns * batch,
            compute_ns=pipeline_ns - (load_ns + store_ns) * batch
            if pipeline_ns > (load_ns + store_ns) * batch
            else pipeline_ns,
            output_store_ns=store_ns * batch,
            pipeline_ns=pipeline_ns,
        )

        total_ns = latency.total_ns
        energy = EnergyBreakdown(
            mvm_pj=profile.mvm_pj_per_sample * batch,
            weight_write_pj=profile.weight_write_pj,
            weight_load_pj=profile.weight_load_pj,
            data_load_pj=batch * profile.data_load_pj_per_sample,
            data_store_pj=batch * profile.data_store_pj_per_sample,
            vfu_pj=profile.vfu_pj_per_sample * batch,
            interconnect_pj=profile.interconnect_pj_per_sample * batch,
            local_memory_pj=profile.local_memory_pj_per_sample * batch,
            static_pj=self.power.static_energy_pj(total_ns, profile.cores_used),
            dram_background_pj=self.dram.config.background_power_mw * total_ns,
        )

        return PartitionEstimate(
            plan=profile.plan,
            io=profile.io,
            batch_size=batch,
            latency=latency,
            energy=energy,
            stage_latency_ns=dict(profile.stage_latency_ns),
        )

    def estimate(self, partition: Partition, plan: Optional[PartitionPlan] = None,
                 batch_size: Optional[int] = None) -> PartitionEstimate:
        """Estimate latency and energy of one partition for a batch."""
        batch = batch_size if batch_size is not None else self.batch_size
        if batch <= 0:
            raise ValueError("batch_size must be positive")
        return self.estimate_from_profile(self.profile(partition, plan=plan), batch)
