"""Repository-root pytest configuration: make ``repro`` importable.

Puts ``src/`` at the front of ``sys.path`` when the package is not already
installed, so a plain ``pytest`` (no ``PYTHONPATH=src``, no editable
install) runs the suite.  A real install (``pip install -e .`` or
``python setup.py develop``) takes precedence because the import system
checks it first when the package is already importable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401  (already installed)
    except ImportError:
        sys.path.insert(0, _SRC)
