"""Live observatory: watching a fault scenario stream window by window.

``examples/telemetry.py`` reads a fault's dip/reaction/recovery off the
*finished* timeline; this example watches the same story **live**.  It
boots the observatory service in-process (:class:`ServerThread` — an
asyncio REST + WebSocket server on an ephemeral port, stdlib only),
submits a fault-injection scenario as the JSON spec a remote client
would POST, and subscribes to the scenario's WebSocket stream.  Each
timeline window arrives the moment the simulator can prove it final —
the streamed rows concatenate byte-for-byte into the report's timeline
block — interleaved with typed fault events and hub snapshots.

Three things to notice:

1. the chip-failure and recovery events arrive *between* window rows,
   exactly where they land in simulated time;
2. a mid-run command POSTed while the scenario runs (here: a second
   injected straggler) joins the simulator's deterministic event order
   and is recorded in the report's ``commands`` block;
3. ``/metrics`` serves the same counters as Prometheus text exposition,
   scrapable while the service is up.

Run with::

    PYTHONPATH=src python examples/observatory.py
"""

from repro.serve.service import ServerThread, WebSocketClient, request_json
from repro.sim.report import render_timeline

SPEC = {
    "models": ["resnet18"],
    "fleet": "M:3",
    "policy": "latency",
    "batches": [1, 2, 4, 8],
    "seed": 11,
    "traffic": {"kind": "poisson", "requests": 120, "utilization": 0.75},
    "slo": {"resnet18": 12.0},
    "inject": ["chip_fail@2000:chip=0,until=6000"],
    "fault_tolerance": {"max_retries": 2, "timeout_us": 8000.0},
    "control": {"interval_us": 500.0, "autoscale": "3:4"},
    "telemetry": {"timeline_us": 500.0},
}


def main() -> None:
    server = ServerThread(port=0)  # ephemeral port, returns once bound
    try:
        host, port = server.host, server.port
        print(f"observatory listening on {host}:{port}")

        status, body = request_json(host, port, "POST", "/scenarios", SPEC)
        assert status == 201, body
        job_id = body["id"]
        print(f"submitted scenario {job_id}\n")

        # a mid-run command: the observatory enqueues it thread-safely and
        # the simulator drains it at its next event pop, so the mutation
        # lands at a deterministic point of the event order
        status, body = request_json(
            host, port, "POST", f"/scenarios/{job_id}/commands",
            {"op": "inject_fault",
             "spec": "straggler@4000:chip=1,factor=3,until=7000"})
        assert status in (201, 409), body  # 409 iff the run already ended

        # follow the live stream: windows as they become final, events as
        # they happen, the terminal report last (the generator ends when
        # the server closes the stream after the report)
        client = WebSocketClient(host, port, f"/scenarios/{job_id}/stream")
        windows = []
        report = None
        for message in client.messages():
            kind = message["type"]
            if kind == "window":
                row = message["data"]
                windows.append(row)
                print(f"  window {row['window']:>3}  "
                      f"arrivals {row['arrivals']:>3}  "
                      f"completed {row['completed']:>3}  "
                      f"p95 {row['p95_ms']:6.2f} ms  "
                      f"attainment {row['attainment']:.2f}")
            elif kind == "event":
                print(f"  event: {message['data']}")
            elif kind == "report":
                report = message["data"]
        client.close()

        assert report is not None
        print(f"\nstreamed {len(windows)} windows; "
              f"final timeline has {len(report['timeline'])} rows "
              f"(identical — streaming never changes content)")
        assert windows == report["timeline"]
        if report.get("commands"):
            print("mid-run commands recorded in the report:")
            for entry in report["commands"]:
                print(f"  {entry['op']}: {entry['status']}")

        print("\nfinal timeline (middle elided):")
        print(render_timeline(report["timeline"], max_rows=12))

        status, text = request_json(host, port, "GET", "/metrics")
        assert status == 200
        lines = [line for line in text.splitlines()
                 if line.startswith(("repro_serve_events_total",
                                     "repro_serve_service_scenarios"))]
        print("\n/metrics excerpt (Prometheus text exposition):")
        for line in lines[:8]:
            print(f"  {line}")
    finally:
        server.stop()
        print("\nobservatory stopped cleanly")


if __name__ == "__main__":
    main()
