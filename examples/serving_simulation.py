"""Serving a request stream on a heterogeneous chip fleet.

Demonstrates the :mod:`repro.serve` subsystem end to end: compile plans
into a warm cache with the exact DP optimizer, generate three traffic
shapes with one fixed seed, and compare scheduling policies on a mixed
S/M fleet.  Everything is deterministic — re-running this script produces
byte-identical output.

Run with::

    PYTHONPATH=src python examples/serving_simulation.py
"""

from repro.evaluation.registry import shared_plan_cache
from repro.serve import (
    BurstyTraffic,
    DiurnalTraffic,
    Fleet,
    PoissonTraffic,
    ServingSimulator,
    fleet_capacity_rps,
)
from repro.sim.report import format_table, render_serving_report

MODEL = "resnet18"
BATCHES = (1, 2, 4, 8, 16)
REQUESTS = 300
SEED = 0


def main() -> None:
    fleet = Fleet.from_spec("S:2,M:1")
    # the process-wide cache: plans compiled here are hits for any other
    # serving experiment in this process (and vice versa)
    cache = shared_plan_cache("dp")
    compiled = cache.warmup((MODEL,), fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, (MODEL,), BATCHES)
    print(f"warmed {compiled} plans; offered rate {rate:.0f} req/s "
          f"(70% of fleet capacity)\n")

    # one full report for the Poisson baseline
    traffic = PoissonTraffic(MODEL, num_requests=REQUESTS, seed=SEED, rate_rps=rate)
    simulator = ServingSimulator(fleet, cache, policy="latency",
                                 batch_sizes=BATCHES, max_wait_us=200.0)
    report = simulator.run(traffic.generate(), traffic_info=traffic.describe())
    print(render_serving_report(report))

    # policy x traffic comparison table
    rows = []
    for traffic in (
        PoissonTraffic(MODEL, num_requests=REQUESTS, seed=SEED, rate_rps=rate),
        BurstyTraffic(MODEL, num_requests=REQUESTS, seed=SEED, rate_rps=2.0 * rate),
        DiurnalTraffic(MODEL, num_requests=REQUESTS, seed=SEED, base_rate_rps=rate),
    ):
        requests = traffic.generate()
        for policy in ("fifo", "least_loaded", "latency"):
            simulator = ServingSimulator(fleet, cache, policy=policy,
                                         batch_sizes=BATCHES, max_wait_us=200.0)
            rows.append(simulator.run(requests, traffic_info=traffic.describe())
                        .summary_row())
    print("\npolicy comparison (same seed per traffic shape):")
    print(format_table(rows, columns=["traffic", "policy", "throughput_rps",
                                      "p50_ms", "p95_ms", "p99_ms", "mean_batch",
                                      "utilisation", "energy_per_request_mj"]))


if __name__ == "__main__":
    main()
