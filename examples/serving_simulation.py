"""Serving a request stream on a heterogeneous chip fleet.

Demonstrates the :mod:`repro.serve` subsystem end to end: compile plans
into a warm cache with the exact DP optimizer, generate three traffic
shapes with one fixed seed, and compare scheduling policies on a mixed
S/M fleet — including the plan-switch weight-replacement cost, a
multi-tenant mix with per-model SLO targets under the ``fair`` policy,
and closed-loop clients whose offered load adapts to the fleet.
Everything is deterministic — re-running this script produces
byte-identical output.

Run with::

    PYTHONPATH=src python examples/serving_simulation.py
"""

from repro.evaluation.registry import shared_plan_cache
from repro.serve import (
    BurstyTraffic,
    ClosedLoopTraffic,
    DiurnalTraffic,
    Fleet,
    PoissonTraffic,
    ServingSimulator,
    fleet_capacity_rps,
)
from repro.sim.report import format_table, render_serving_report

MODEL = "resnet18"
BATCHES = (1, 2, 4, 8, 16)
REQUESTS = 300
SEED = 0


def main() -> None:
    fleet = Fleet.from_spec("S:2,M:1")
    # the process-wide cache: plans compiled here are hits for any other
    # serving experiment in this process (and vice versa)
    cache = shared_plan_cache("dp")
    compiled = cache.warmup((MODEL,), fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, (MODEL,), BATCHES)
    print(f"warmed {compiled} plans; offered rate {rate:.0f} req/s "
          f"(70% of fleet capacity)\n")

    # one full report for the Poisson baseline (switch cost on by default:
    # the report counts plan switches and their weight-replacement time)
    traffic = PoissonTraffic(MODEL, num_requests=REQUESTS, seed=SEED, rate_rps=rate)
    simulator = ServingSimulator(fleet, cache, policy="latency",
                                 batch_sizes=BATCHES, max_wait_us=200.0)
    report = simulator.run(traffic.generate(), traffic_info=traffic.describe())
    print(render_serving_report(report))

    # policy x traffic comparison table
    rows = []
    for traffic in (
        PoissonTraffic(MODEL, num_requests=REQUESTS, seed=SEED, rate_rps=rate),
        BurstyTraffic(MODEL, num_requests=REQUESTS, seed=SEED, rate_rps=2.0 * rate),
        DiurnalTraffic(MODEL, num_requests=REQUESTS, seed=SEED, base_rate_rps=rate),
    ):
        requests = traffic.generate()
        for policy in ("fifo", "least_loaded", "latency"):
            simulator = ServingSimulator(fleet, cache, policy=policy,
                                         batch_sizes=BATCHES, max_wait_us=200.0)
            rows.append(simulator.run(requests, traffic_info=traffic.describe())
                        .summary_row())
    print("\npolicy comparison (same seed per traffic shape):")
    print(format_table(rows, columns=["traffic", "policy", "throughput_rps",
                                      "p50_ms", "p95_ms", "p99_ms", "mean_batch",
                                      "plan_switches", "utilisation",
                                      "energy_per_request_mj"]))

    # multi-tenant mix with per-model SLO targets: deficit round-robin vs
    # plain FIFO queueing on the same fixed-seed stream
    tenants = (MODEL, "squeezenet")
    cache.warmup(tenants, fleet.chip_names, BATCHES)
    mix_rate = 0.7 * fleet_capacity_rps(cache, fleet, tenants, BATCHES)
    slos = {MODEL: 10.0, "squeezenet": 3.0}
    mix = PoissonTraffic(tenants, num_requests=REQUESTS, seed=SEED,
                         rate_rps=mix_rate, model_weights=(0.8, 0.2))
    mix_requests = mix.generate()
    print("\nmulti-tenant SLO attainment (80/20 mix, targets "
          + ", ".join(f"{m}={t:g} ms" for m, t in sorted(slos.items())) + "):")
    for policy in ("fifo", "fair"):
        simulator = ServingSimulator(fleet, cache, policy=policy,
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     slos=slos)
        result = simulator.run(mix_requests, traffic_info=mix.describe())
        for model, block in sorted(result.slo.items()):
            print(f"  {policy:<6s} {model:<12s}: attainment "
                  f"{block['attainment']:.1%} (p99 {block['p99_ms']:.3f} ms)")

    # closed-loop clients: offered load adapts to the fleet, outstanding
    # requests never exceed clients x concurrency
    closed = ClosedLoopTraffic(MODEL, num_requests=REQUESTS, seed=SEED,
                               clients=8, concurrency=2, mean_think_s=0.0005)
    simulator = ServingSimulator(fleet, cache, policy="latency",
                                 batch_sizes=BATCHES, max_wait_us=200.0)
    result = simulator.run(closed)
    print(f"\nclosed loop (8 clients x 2 outstanding, 0.5 ms think): "
          f"{result.throughput_rps:.0f} req/s, "
          f"p99 {result.latency_ms['p99']:.3f} ms, "
          f"max queue depth {result.queue_depth['max']:.0f}")


if __name__ == "__main__":
    main()
