"""Map VGG16 (66 MB of weights) onto a 1.125 MB crossbar PIM chip.

This is the motivating scenario of the paper: the network is ~60x larger than
the chip's in-memory capacity, so an all-on-chip compiler (PUMA, PIMCOMP)
cannot map it at all.  COMPASS decomposes the model into partition units,
precomputes the validity map and searches for a partitioning that balances
pipeline depth, weight replication and DRAM traffic.

Run with:  python examples/vgg16_on_tiny_chip.py
"""

from repro import CHIP_S, build_model
from repro.core import ValidityMap, decompose_model, greedy_partition
from repro.core.compiler import compile_model
from repro.core.ga import GAConfig


def main() -> None:
    model = build_model("vgg16")
    chip = CHIP_S
    weight_mb = model.crossbar_weight_bytes(4) / 2**20
    print(f"{model.name}: {weight_mb:.2f} MiB of weights vs "
          f"{chip.weight_capacity_mb:.3f} MB on-chip capacity "
          f"({weight_mb / chip.weight_capacity_mb:.0f}x oversubscribed)")

    # decomposition and validity map (Fig. 4 / Fig. 5 of the paper)
    decomposition = decompose_model(model, chip)
    validity = ValidityMap(decomposition)
    print(f"partition units           : {decomposition.num_units}")
    print(f"validity-map valid share  : {validity.valid_fraction():.1%}")
    largest_span = max(validity.max_end(i) - i for i in range(validity.num_units))
    print(f"largest valid span        : {largest_span} units")

    # a quick baseline for reference
    greedy = greedy_partition(decomposition, validity)
    print(f"greedy partitioning       : {greedy.num_partitions} partitions")

    # full COMPASS compilation (small GA to keep the example under a minute)
    result = compile_model(
        model, chip, scheme="compass", batch_size=8,
        ga_config=GAConfig(population_size=20, generations=6, n_select=5, n_mutate=15, seed=0),
        generate_instructions=False,
    )
    print(f"COMPASS partitioning      : {result.num_partitions} partitions")
    print()
    print(result.summary())

    report = result.report
    print("\nWhere the time goes (first 10 partitions):")
    for index, estimate in enumerate(report.estimates[:10]):
        latency = estimate.latency
        print(f"  P{index:<3d} weight-replace {latency.weight_replace_ns * 1e-6:7.3f} ms, "
              f"pipeline {latency.pipeline_ns * 1e-6:7.3f} ms, "
              f"{len(estimate.plan.slices)} layer slices, "
              f"{estimate.plan.crossbars_used} crossbars used")
    if report.num_partitions > 10:
        print(f"  ... and {report.num_partitions - 10} more partitions")

    print(f"\nDRAM weight traffic  : {report.weight_traffic_bytes() / 2**20:.1f} MiB per batch")
    print(f"DRAM feature traffic : {report.feature_traffic_bytes() / 2**20:.1f} MiB per batch")


if __name__ == "__main__":
    main()
