"""Quickstart: compile SqueezeNet onto the small (1.125 MB) PIM chip.

This is the smallest end-to-end use of the public API:

1. build a model graph from the model zoo,
2. pick a chip configuration (Table I of the paper),
3. compile with the COMPASS genetic algorithm,
4. inspect throughput, energy and the generated instruction streams.

Run with:  python examples/quickstart.py
"""

from repro import CHIP_S, build_model, compile_model
from repro.core.ga import GAConfig
from repro.sim.report import render_execution_report


def main() -> None:
    # 1. a model graph: SqueezeNet v1.1 (0.59 MB of 4-bit weights)
    model = build_model("squeezenet")
    print(f"model {model.name}: {len(model)} layers, "
          f"{model.crossbar_weight_bytes(4) / 2**20:.3f} MiB of crossbar weights")

    # 2. the chip: Chip-S has 16 cores x 9 crossbars = 1.125 MB of capacity
    print(CHIP_S.describe())

    # 3. compile with the COMPASS GA (a small GA keeps the example snappy)
    result = compile_model(
        model,
        CHIP_S,
        scheme="compass",
        batch_size=8,
        ga_config=GAConfig(population_size=20, generations=8, n_select=5, n_mutate=15, seed=0),
    )

    # 4. results
    print()
    print(result.summary())
    print()
    print(render_execution_report(result.report))

    print("\nChosen partitioning:")
    for index, partition in enumerate(result.group.partitions()):
        layers = ", ".join(partition.layer_names())
        print(f"  partition {index}: {partition.num_units} units, "
              f"{partition.weight_bytes / 1024:.1f} KiB -> layers: {layers}")

    schedule = result.schedule
    print(f"\ninstruction streams: {schedule.total_instructions:,} instructions "
          f"across {sum(len(s.programs) for s in schedule.partitions)} core programs")
    first_core = min(schedule.partitions[0].programs)
    print(f"first instructions on core {first_core}:")
    for instruction in list(schedule.partitions[0].programs[first_core])[:6]:
        print(f"  {instruction}")


if __name__ == "__main__":
    main()
