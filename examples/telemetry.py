"""Streaming telemetry: watching a fault and its recovery on the timeline.

PR 7 gave the serving stack a self-healing control plane; this example
turns on :mod:`repro.serve.telemetry` and *watches* it work.  One fixed
Poisson stream runs on a three-chip fleet while chip 0 dies for the
middle third of the run.  The telemetry layer — a pure observer, the
simulated outcome is bit-identical with it on or off — records:

1. a metrics timeline (``--timeline-us`` on the CLI): per-window
   arrivals, throughput, latency percentiles from constant-memory
   log2-histogram sketches, queue depth, utilisation, SLO attainment,
   and per-window deltas of the controller's actions;
2. constant-memory percentile sketches (``--streaming-percentiles``):
   P-squared estimates of the terminal p50/p95/p99 compared below
   against the exact nearest-rank values;
3. request lifecycle traces (``--trace-requests K``): every K-th
   request's queued/service spans, exportable as Chrome trace-event
   JSON via ``--trace-out``.

The timeline tells the whole story in one table: attainment dips when
the chip dies, the controller quarantines the corpse and scales up, and
attainment recovers while the fault is still active.

Run with::

    PYTHONPATH=src python examples/telemetry.py
"""

from repro.evaluation.registry import shared_plan_cache
from repro.serve import (
    ControlConfig,
    FaultTolerance,
    Fleet,
    PoissonTraffic,
    ServingSimulator,
    TelemetryConfig,
    fleet_capacity_rps,
    parse_inject,
)
from repro.sim.report import format_table, render_timeline

MODEL = "resnet18"
BATCHES = (1, 2, 4, 8)
REQUESTS = 240
SEED = 0
SLO_MS = 12.0


def main() -> None:
    cache = shared_plan_cache("dp")
    base_fleet = Fleet.from_spec("M:3")
    cache.warmup((MODEL,), base_fleet.chip_names, BATCHES)
    rate = 0.9 * fleet_capacity_rps(cache, base_fleet, (MODEL,), BATCHES)

    # chip 0 dies for the middle third of the stream
    span_us = REQUESTS / rate * 1e6
    fail_at, fail_until = 0.33 * span_us, 0.66 * span_us
    faults = [parse_inject(f"chip_fail@{fail_at:.0f}:chip=0,"
                           f"until={fail_until:.0f}")]
    ft = FaultTolerance(timeout_us=0.4 * span_us, max_retries=2,
                        retry_priority=True)
    control = ControlConfig(interval_us=200.0, hedge_after_pct=85.0,
                            autoscale=True, min_chips=3, max_chips=5,
                            cooldown_us=1000.0)
    interval_us = span_us / 24  # ~24 timeline windows across the run

    def serve(telemetry):
        traffic = PoissonTraffic(MODEL, num_requests=REQUESTS, seed=SEED,
                                 rate_rps=rate)
        simulator = ServingSimulator(Fleet.from_spec("M:3"), cache,
                                     policy="latency", batch_sizes=BATCHES,
                                     max_wait_us=200.0, slos={MODEL: SLO_MS},
                                     faults=faults, fault_tolerance=ft,
                                     control=control, telemetry=telemetry)
        return simulator.run(traffic.generate(),
                             traffic_info=traffic.describe())

    report = serve(TelemetryConfig(timeline_interval_us=interval_us,
                                   trace_every=10))
    print(f"offered rate {rate:.0f} req/s on M:3, chip M#0 down "
          f"{fail_at / 1e3:.1f} .. {fail_until / 1e3:.1f} ms "
          f"(from window {fail_at / interval_us:.0f}), "
          f"SLO {MODEL}={SLO_MS:g} ms\n")
    print(render_timeline(report.timeline))

    # read the story back out of the rows: the dip, the reaction, the
    # recovery — all within the fault window
    rows = report.timeline
    fault_w = int(fail_at / interval_us)
    dip = min((r for r in rows[fault_w:] if r["completed"]),
              key=lambda r: r["attainment"])
    stalled = [r["window"] for r in rows[fault_w:fault_w + 4]
               if not r["completed"]]
    reaction = next(r for r in rows[fault_w:]
                    if any(r.get(k, 0) for k in ("quarantines", "hedges",
                                                 "scale_ups")))
    recovered = next(r for r in rows if r["window"] > dip["window"]
                     and r["completed"] and r["attainment"] >= 0.99)
    stall_note = (f" (window {stalled[0]} completed nothing at all)"
                  if stalled else "")
    print(f"\nwindow {dip['window']}: attainment dips to "
          f"{dip['attainment']:.1%} after the chip failure{stall_note}; "
          f"window {reaction['window']}: first controller reaction "
          f"(quarantine/hedge/scale-up deltas above); "
          f"window {recovered['window']}: attainment back to "
          f"{recovered['attainment']:.1%} — before the chip returns.")

    # terminal percentiles: exact nearest-rank vs the constant-memory
    # P-squared sketch (documented error bound: within 15% of exact for
    # the latency mix the serving tests cover)
    sketch = serve(TelemetryConfig(streaming_percentiles=True))
    exact = report.latency_ms
    estimate = sketch.latency_ms
    print("\nexact terminal percentiles vs constant-memory P-squared "
          "sketches (--streaming-percentiles):")
    print(format_table([{
        "percentile": name,
        "exact_ms": exact[name],
        "sketch_ms": estimate[name],
        "error": abs(estimate[name] - exact[name]) / exact[name]
        if exact[name] else 0.0,
    } for name in ("p50", "p95", "p99")]))

    counters = report.telemetry["counters"]
    print(f"\ntelemetry counters: {counters['arrivals']} arrivals, "
          f"{counters['completions']} completions, "
          f"{counters.get('retries', 0)} retries; every 10th request "
          "traced (export the spans with --trace-out trace.json)")


if __name__ == "__main__":
    main()
