"""Compare the four partition-search engines on one workload.

The paper's GA (Algorithm 1) is one way to search the partition space; the
reproduction's dense span matrix makes three more practical — including an
*exact* dynamic program for the latency objective, something the paper had
no way to compute.  This example runs all four engines of ``repro.search``
on ResNet18 / Chip-M / batch 16 and prints, per engine, the fitness it
found, its gap to the DP optimum, how many evaluations it spent and how
long it took.

Run with:  python examples/optimizer_comparison.py
"""

import time

from repro.core.fitness import FitnessEvaluator
from repro.core.ga import GAConfig
from repro.evaluation.registry import shared_decomposition
from repro.search import OPTIMIZERS, make_search
from repro.sim.report import format_table


def main() -> None:
    model, chip, batch = "resnet18", "M", 16
    decomposition, validity = shared_decomposition(model, chip)
    print(f"{model} on Chip-{chip}, batch {batch}: "
          f"{decomposition.num_units} partition units, "
          f"{validity.valid_fraction():.0%} of spans valid")

    # one evaluator per engine run keeps the comparison honest; the span
    # table/matrix underneath is shared, so later engines reuse the spans
    # earlier engines profiled (run the DP first to warm the full triangle)
    engine_kwargs = {
        "dp": {},
        "beam": {"width": 8},
        "anneal": {"steps": 600, "seed": 0},
        "ga": {"ga_config": GAConfig(population_size=30, generations=12,
                                     n_select=8, n_mutate=22, seed=0)},
    }
    results = {}
    for name in ("dp", "beam", "anneal", "ga"):
        evaluator = FitnessEvaluator(decomposition, batch_size=batch)
        search = make_search(name, decomposition, evaluator, validity,
                             **engine_kwargs[name])
        started = time.perf_counter()
        results[name] = search.run()
        results[name].elapsed_s = time.perf_counter() - started

    optimum = results["dp"].best_fitness
    rows = []
    for name, result in results.items():
        rows.append({
            "optimizer": name,
            "fitness_ns": result.best_fitness,
            "gap_pct": (result.best_fitness / optimum - 1.0) * 100.0,
            "partitions": result.best_group.num_partitions,
            "evaluations": result.evaluations,
            "exact": result.exact,
            "time_s": result.elapsed_s,
        })
    print()
    print(format_table(rows, columns=["optimizer", "fitness_ns", "gap_pct",
                                      "partitions", "evaluations", "exact",
                                      "time_s"]))
    print(f"\n(available engines: {', '.join(sorted(OPTIMIZERS))}; "
          "the DP row is the provable latency optimum)")


if __name__ == "__main__":
    main()
