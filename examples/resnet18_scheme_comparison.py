"""Compare COMPASS against the greedy and layerwise baselines on ResNet18.

Reproduces the scenario behind Fig. 7 of the paper ("ResNet18-M-16"): the
5.6 MB network does not fit on the 2 MB Chip-M, so it must be split into
partitions executed back-to-back with weight replacement in between.  The
example prints, for each partitioning scheme, the partition count, the
per-partition latency breakdown and the end-to-end throughput/EDP.

Run with:  python examples/resnet18_scheme_comparison.py
"""

from repro import CHIP_M, build_model, compile_model
from repro.core.ga import GAConfig
from repro.sim.report import format_table


def main() -> None:
    model = build_model("resnet18")
    batch_size = 16
    print(f"{model.name}: {model.crossbar_weight_bytes(4) / 2**20:.2f} MiB of weights, "
          f"Chip-M capacity {CHIP_M.weight_capacity_mb:.1f} MB, batch {batch_size}")

    ga_config = GAConfig(population_size=30, generations=12, n_select=8, n_mutate=22, seed=0)
    results = {}
    for scheme in ("greedy", "layerwise", "compass"):
        results[scheme] = compile_model(
            model, CHIP_M, scheme=scheme, batch_size=batch_size,
            ga_config=ga_config, generate_instructions=False,
        )

    rows = [r.report.summary_row() for r in results.values()]
    print()
    print(format_table(rows, columns=["scheme", "partitions", "latency_ms",
                                      "throughput_ips", "energy_per_inf_mj", "edp_mj_ms"]))

    print("\nPer-partition latency breakdown (ms):")
    for scheme, result in results.items():
        latencies = result.report.partition_latencies_ns()
        total = sum(latencies)
        shares = ", ".join(f"{v / total:.0%}" for v in latencies[:8])
        more = " ..." if len(latencies) > 8 else ""
        print(f"  {scheme:<10s}: {shares}{more}")

    compass = results["compass"].report
    for baseline in ("greedy", "layerwise"):
        report = results[baseline].report
        print(f"\nCOMPASS vs {baseline}: "
              f"{compass.throughput / report.throughput:.2f}x throughput, "
              f"{report.edp_per_inference / compass.edp_per_inference:.2f}x EDP gain")

    print("\nDRAM traffic per batch (activations staged between partitions):")
    for scheme, result in results.items():
        print(f"  {scheme:<10s}: weights {result.report.weight_traffic_bytes() / 2**20:.2f} MiB, "
              f"features {result.report.feature_traffic_bytes() / 2**20:.2f} MiB")


if __name__ == "__main__":
    main()
