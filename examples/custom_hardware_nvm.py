"""Target a custom (eNVM-style) crossbar chip with expensive weight writes.

Sec. V-B of the paper notes that COMPASS extends to ReRAM/MRAM crossbars by
parameterising the crossbar write cost: non-volatile memories have much
higher write latency/energy, which makes weight replacement relatively more
expensive and pushes the optimiser towards fewer, larger partitions and
bigger batches.  This example builds such a chip configuration from scratch
with the public hardware API and compares the compiled result against the
SRAM-like default.

Run with:  python examples/custom_hardware_nvm.py
"""

from dataclasses import replace

from repro import build_model, compile_model
from repro.core.ga import GAConfig
from repro.hardware import CHIP_M
from repro.hardware.chip import ChipConfig, InterconnectConfig
from repro.hardware.core import CoreConfig
from repro.hardware.crossbar import CrossbarConfig
from repro.sim.report import format_table


def build_nvm_chip() -> ChipConfig:
    """A Chip-M-sized accelerator built from MRAM-like crossbars.

    Writes are ~20x slower and ~15x more energetic than the SRAM-CIM default;
    reads (MVMs) are comparable.
    """
    nvm_crossbar = CrossbarConfig(
        mvm_latency_ns=110.0,
        mvm_energy_pj=380.0,
        write_row_latency_ns=1000.0,
        write_energy_per_cell_pj=15.0,
        static_power_mw=0.05,  # non-volatile cells barely leak
    )
    nvm_core = CoreConfig(crossbars_per_core=16, crossbar=nvm_crossbar)
    return ChipConfig(name="M-NVM", num_cores=16, core=nvm_core,
                      interconnect=InterconnectConfig())


def main() -> None:
    model = build_model("resnet18")
    ga_config = GAConfig(population_size=20, generations=8, n_select=5, n_mutate=15, seed=0)
    nvm_chip = build_nvm_chip()

    rows = []
    details = {}
    for chip in (CHIP_M, nvm_chip):
        for batch in (1, 16):
            result = compile_model(model, chip, scheme="compass", batch_size=batch,
                                   ga_config=ga_config, generate_instructions=False)
            breakdown = result.report.energy_breakdown
            rows.append({
                "chip": chip.name,
                "batch": batch,
                "partitions": result.num_partitions,
                "throughput_ips": result.report.throughput,
                "energy_per_inf_mj": result.report.energy_per_inference_mj,
                "write_energy_share": breakdown.weight_write_pj / breakdown.total_pj,
            })
            details[(chip.name, batch)] = result

    print("ResNet18 on SRAM-CIM vs eNVM-style crossbars (COMPASS partitioning)")
    print(format_table(rows, columns=["chip", "batch", "partitions", "throughput_ips",
                                      "energy_per_inf_mj", "write_energy_share"]))

    sram = details[("M", 16)]
    nvm = details[("M-NVM", 16)]
    print("\nEffect of expensive writes at batch 16:")
    print(f"  SRAM chip : {sram.num_partitions} partitions, "
          f"{sram.report.weight_traffic_bytes() / 2**20:.2f} MiB of weights rewritten per batch")
    print(f"  NVM chip  : {nvm.num_partitions} partitions, "
          f"{nvm.report.weight_traffic_bytes() / 2**20:.2f} MiB of weights rewritten per batch")
    print("\nWith NVM write costs the optimiser leans on batching even harder to")
    print("amortise the (now much more expensive) weight-replacement phases, and the")
    print("write share of total energy becomes the dominant overhead at batch 1.")


if __name__ == "__main__":
    main()
