"""Explore the batch-size trade-off for partitioned execution (Sec. II-B).

Executing each partition over a batch of inputs amortises the weight
replacement cost (higher throughput, lower energy per inference) but makes
every sample wait for its batch-mates before the next partition starts
(higher end-to-end latency).  This example sweeps the batch size for
ResNet18 on each chip configuration and prints the resulting throughput,
per-sample latency, energy and EDP, plus the weight-traffic/compute energy
ratio of Fig. 9.

Run with:  python examples/batch_size_exploration.py
"""

from repro import build_model, compile_model, get_chip_config
from repro.core.ga import GAConfig
from repro.sim.report import format_table


def main() -> None:
    model = build_model("resnet18")
    ga_config = GAConfig(population_size=16, generations=6, n_select=4, n_mutate=12, seed=0)
    batch_sizes = (1, 2, 4, 8, 16)

    rows = []
    for chip_name in ("S", "M", "L"):
        chip = get_chip_config(chip_name)
        for batch in batch_sizes:
            result = compile_model(model, chip, scheme="compass", batch_size=batch,
                                   ga_config=ga_config, generate_instructions=False)
            report = result.report
            breakdown = report.energy_breakdown
            rows.append({
                "config": f"{chip_name}-{batch}",
                "partitions": result.num_partitions,
                "throughput_ips": report.throughput,
                "latency_per_inf_ms": report.latency_per_inference_ms,
                "energy_per_inf_mj": report.energy_per_inference_mj,
                "edp_mj_ms": report.edp_per_inference,
                "weight_over_mvm": (breakdown.weight_load_pj + breakdown.weight_write_pj)
                / max(breakdown.mvm_pj, 1e-9),
            })

    print("ResNet18 with COMPASS partitioning — batch-size exploration")
    print(format_table(rows, columns=["config", "partitions", "throughput_ips",
                                      "latency_per_inf_ms", "energy_per_inf_mj",
                                      "edp_mj_ms", "weight_over_mvm"]))

    print("\nObservations (cf. Figs. 6, 8, 9 of the paper):")
    print("  * throughput rises with batch size as weight replacement is amortised;")
    print("  * energy per inference falls with batch size for the same reason;")
    print("  * at batch 1 the weight write/load energy dominates the MVM energy,")
    print("    by batch 16 it is a small fraction of it;")
    print("  * the sweet spot balances throughput against end-to-end latency.")


if __name__ == "__main__":
    main()
