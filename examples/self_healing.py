"""Self-healing serving: the control plane closing the loop on failures.

PR 6's fault-tolerance knobs give individual requests survival tools;
:mod:`repro.serve.control` gives the *fleet* a supervisor.  This example
serves one fixed Poisson stream on a three-chip fleet while two things go
wrong at once — one chip dies mid-run and another turns into a 6x
straggler — and compares three configurations:

1. fault tolerance only (retries + timeouts): requests survive, but the
   scheduler keeps feeding the sick chips and tail latency collapses;
2. the control plane's detection/quarantine + hedging: stalled and
   straggling chips are detected from the controller's own health
   signals, drained, and probation-readmitted; slow in-flight requests
   are hedged onto healthy chips;
3. the full self-healing stack: quarantine + hedging + the SLO-driven
   autoscaler (cold chips pay their weight-replacement cost) + plan
   re-placement across the survivors.

Everything is deterministic: the controller consumes no randomness, so
re-running this script produces byte-identical output.

Run with::

    PYTHONPATH=src python examples/self_healing.py
"""

from repro.evaluation.registry import shared_plan_cache
from repro.serve import (
    ControlConfig,
    FaultTolerance,
    Fleet,
    PoissonTraffic,
    ServingSimulator,
    fleet_capacity_rps,
    parse_inject,
)
from repro.sim.report import format_table, render_serving_report

MODEL = "resnet18"
BATCHES = (1, 2, 4, 8)
REQUESTS = 200
SEED = 0
SLO_MS = 12.0


def main() -> None:
    cache = shared_plan_cache("dp")
    base_fleet = Fleet.from_spec("M:3")
    cache.warmup((MODEL,), base_fleet.chip_names, BATCHES)
    rate = 1.0 * fleet_capacity_rps(cache, base_fleet, (MODEL,), BATCHES)

    # the same double fault for every run: chip 0 dies early and stays
    # down for most of the stream, chip 1 straggles at 6x from the start
    span_us = REQUESTS / rate * 1e6
    faults = [
        parse_inject(f"chip_fail@{0.05 * span_us:.0f}:chip=0,"
                     f"until={0.8 * span_us:.0f}"),
        parse_inject(f"straggler@{0.02 * span_us:.0f}:chip=1,factor=6"),
    ]
    ft = FaultTolerance(timeout_us=0.3 * span_us, max_retries=2,
                        retry_priority=True)
    print(f"offered rate {rate:.0f} req/s (100% of the healthy fleet's "
          f"capacity);\nchip M#0 down {0.05 * span_us / 1e3:.1f} .. "
          f"{0.8 * span_us / 1e3:.1f} ms, chip M#1 straggling at 6x\n")

    def serve(label, control=None):
        traffic = PoissonTraffic(MODEL, num_requests=REQUESTS, seed=SEED,
                                 rate_rps=rate)
        simulator = ServingSimulator(Fleet.from_spec("M:3"), cache,
                                     policy="latency", batch_sizes=BATCHES,
                                     max_wait_us=200.0, slos={MODEL: SLO_MS},
                                     faults=faults, fault_tolerance=ft,
                                     control=control)
        report = simulator.run(traffic.generate(),
                               traffic_info=traffic.describe())
        return label, report

    detect = ControlConfig(interval_us=200.0, hedge_after_pct=80.0,
                           probation_us=5000.0)
    full = ControlConfig(interval_us=200.0, hedge_after_pct=80.0,
                         probation_us=5000.0, autoscale=True,
                         min_chips=2, max_chips=6, cooldown_us=500.0)
    runs = [
        serve("fault tolerance only"),
        serve("+ quarantine + hedging", control=detect),
        serve("+ autoscale + re-placement", control=full),
    ]

    rows = []
    for label, report in runs:
        control = report.control
        rows.append({
            "scenario": label,
            "completed": report.completed,
            "timeouts": report.timeouts,
            "p99_ms": report.latency_ms["p99"],
            "slo_attainment": report.slo[MODEL]["attainment"],
            "quarantines": int(control.get("quarantines", 0)),
            "hedges": int(control.get("hedges", 0)),
            "chips": int(control.get("final_chips", 0)) or 3,
        })
    print("the same double fault under increasing self-healing "
          f"(SLO {MODEL}={SLO_MS:g} ms):")
    print(format_table(rows))
    print()
    print("detection + hedging trims the tail — the controller drains the "
          "dead and\nstraggling chips from its own signals (scored against "
          "the injected ground\ntruth in the control block) and hedges "
          "their slow in-flight requests — but\nwith two of three chips "
          "sick, no amount of routing restores attainment.\nThat takes the "
          "autoscaler: cold chips join, pay their weight-replacement\ncost "
          "once, and the re-placement solve pre-warms the plans the "
          "observed\ntraffic mix wants — SLO attainment recovers even "
          "though the double fault\nstill happened.\n")

    # the full report of the self-healing run, control section included
    print(render_serving_report(runs[2][1]))


if __name__ == "__main__":
    main()
