"""Fault-tolerant serving: chip failures, retries, and load shedding.

Walks through the :mod:`repro.serve.faults` machinery end to end: a fixed
Poisson stream with an SLO target is served on a two-chip fleet while one
chip fails and recovers mid-run.  Four configurations of the same scenario
show what each fault-tolerance knob buys:

1. no faults (the baseline the other runs degrade from);
2. the failure with no protection — the in-flight batch's riders are lost
   and the surviving chip's backlog wrecks tail latency;
3. retries + timeouts — nothing is lost, but every admitted request is
   served late;
4. retries + admission control — excess arrivals are shed at the door, so
   the requests that are admitted still meet their SLO.

Everything is deterministic — the chaos schedule at the end is pre-drawn
from its own seed, so re-running this script produces byte-identical
output.

Run with::

    PYTHONPATH=src python examples/fault_tolerance.py
"""

from repro.evaluation.registry import shared_plan_cache
from repro.serve import (
    FaultTolerance,
    Fleet,
    PoissonTraffic,
    ServingSimulator,
    fleet_capacity_rps,
    parse_inject,
)
from repro.sim.report import format_table, render_serving_report

MODEL = "resnet18"
BATCHES = (1, 2, 4, 8, 16)
REQUESTS = 300
SEED = 0
SLO_MS = 12.0


def main() -> None:
    fleet = Fleet.from_spec("M:2")
    cache = shared_plan_cache("dp")
    cache.warmup((MODEL,), fleet.chip_names, BATCHES)
    rate = 0.8 * fleet_capacity_rps(cache, fleet, (MODEL,), BATCHES)

    # one fault schedule for every run: chip 0 dies a fifth of the way
    # into the offered stream and is repaired at the midpoint
    span_us = REQUESTS / rate * 1e6
    outage = [parse_inject(f"chip_fail@{0.2 * span_us:.0f}:chip=0,"
                           f"until={0.5 * span_us:.0f}")]
    print(f"offered rate {rate:.0f} req/s (80% of fleet capacity); "
          f"chip M#0 down {0.2 * span_us / 1e3:.1f} .. "
          f"{0.5 * span_us / 1e3:.1f} ms\n")

    def serve(label, faults=(), ft=None):
        traffic = PoissonTraffic(MODEL, num_requests=REQUESTS, seed=SEED,
                                 rate_rps=rate)
        simulator = ServingSimulator(fleet, cache, policy="latency",
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     slos={MODEL: SLO_MS},
                                     faults=faults, fault_tolerance=ft)
        report = simulator.run(traffic.generate(),
                               traffic_info=traffic.describe())
        return label, report

    runs = [
        serve("no faults"),
        serve("failure, no protection", faults=outage),
        serve("failure + retries", faults=outage,
              ft=FaultTolerance(timeout_us=0.2 * span_us, max_retries=2)),
        serve("failure + retries + shedding", faults=outage,
              ft=FaultTolerance(timeout_us=0.2 * span_us, max_retries=2,
                                shed_queue_depth=12)),
    ]

    rows = []
    for label, report in runs:
        rows.append({
            "scenario": label,
            "completed": report.completed,
            "lost": report.lost,
            "timeouts": report.timeouts,
            "shed": report.shed,
            "retries": report.retries,
            "p99_ms": report.latency_ms["p99"],
            "slo_attainment": report.slo[MODEL]["attainment"],
            "availability": report.availability,
        })
    print("the same failure under increasing protection "
          f"(SLO {MODEL}={SLO_MS:g} ms):")
    print(format_table(rows))
    print()
    print("shedding trades completed requests for tail latency: the shed "
          "run serves fewer\nrequests than the retry-only run, but the ones "
          "it admits meet their SLO far\nmore often — admission control is "
          "how overload stays a throughput problem\ninstead of a latency "
          "problem.\n")

    # the full report of the protected run, fault section included
    print(render_serving_report(runs[3][1]))

    # chaos testing: failures drawn from a seeded stream (pre-drawn at
    # materialisation — the simulator itself consumes no randomness)
    chaos = [parse_inject(f"chaos@0:seed=11,count=3,"
                          f"mtbf_us={span_us / 4:.0f},"
                          f"mttr_us={span_us / 20:.0f}")]
    _, report = serve("chaos", faults=chaos,
                      ft=FaultTolerance(timeout_us=0.2 * span_us,
                                        max_retries=2, shed_queue_depth=12))
    print(f"\nchaos run (3 seeded failures): {report.failures} failures "
          f"applied, {report.completed}/{report.num_requests} served, "
          f"{report.retries} retries, availability {report.availability:.2%}")


if __name__ == "__main__":
    main()
