"""Table I: hardware configurations of the S/M/L chips.

Regenerates the capacity/power rows of Table I from the hardware model and
checks they match the paper exactly (this table is configuration, not
measurement, so exact agreement is expected).
"""

import pytest

from repro.evaluation.experiments import table1_hardware_configuration
from repro.sim.report import format_table

PAPER_TABLE1 = {
    "S": {"num_cores": 16, "crossbars_per_core": 9, "capacity_mb": 1.125, "power_w": 1.57},
    "M": {"num_cores": 16, "crossbars_per_core": 16, "capacity_mb": 2.0, "power_w": 2.80},
    "L": {"num_cores": 36, "crossbars_per_core": 16, "capacity_mb": 4.5, "power_w": 6.30},
}


def test_table1_hardware_configuration(benchmark):
    rows = benchmark.pedantic(table1_hardware_configuration, rounds=1, iterations=1)
    print("\nTable I — hardware configuration (reproduced)")
    print(format_table(rows, columns=["chip", "num_cores", "crossbars_per_core",
                                      "capacity_mb", "nominal_power_w", "vfu_power_mw",
                                      "local_memory_kb", "control_power_mw"]))

    by_chip = {r["chip"]: r for r in rows}
    for chip, expected in PAPER_TABLE1.items():
        row = by_chip[chip]
        assert row["num_cores"] == expected["num_cores"]
        assert row["crossbars_per_core"] == expected["crossbars_per_core"]
        assert row["capacity_mb"] == pytest.approx(expected["capacity_mb"])
        assert row["nominal_power_w"] == pytest.approx(expected["power_w"])
    # per-core component specs from Table I
    assert by_chip["S"]["vfu_power_mw"] == pytest.approx(22.8)
    assert by_chip["S"]["local_memory_kb"] == 64
    assert by_chip["S"]["local_memory_power_mw"] == pytest.approx(18.0)
    assert by_chip["S"]["control_power_mw"] == pytest.approx(8.0)
