"""Fig. 5: partition validity maps for the benchmark models on Chip-S and Chip-L.

The paper's qualitative observation: with more weight parameters and a
smaller in-memory capacity (towards SqueezeNet -> VGG16 and Chip-L -> Chip-S)
the invalid portion of the validity map grows.
"""

import numpy as np

from repro.evaluation.experiments import fig5_validity_maps
from repro.sim.report import format_table


def render_ascii_map(matrix: np.ndarray, width: int = 40) -> str:
    """Downsample the boolean validity matrix to a small ASCII picture."""
    n = matrix.shape[0]
    step = max(1, n // width)
    lines = []
    for i in range(0, n, step):
        row = matrix[i]
        line = "".join("#" if row[j] else "." for j in range(0, n, step))
        lines.append(line)
    return "\n".join(lines)


def test_fig5_validity_maps(benchmark):
    rows = benchmark.pedantic(
        fig5_validity_maps,
        kwargs={"models": ("squeezenet", "resnet18", "vgg16"), "chips": ("S", "L")},
        rounds=1, iterations=1,
    )
    printable = [{k: v for k, v in r.items() if k != "matrix"} for r in rows]
    print("\nFig. 5 — validity map statistics (reproduced)")
    print(format_table(printable, columns=["model", "chip", "num_units", "valid_fraction"]))
    smallest = next(r for r in rows if r["model"] == "squeezenet" and r["chip"] == "S")
    print("\nSqueezeNet / Chip-S validity map (valid = '#'):")
    print(render_ascii_map(smallest["matrix"]))

    by_key = {(r["model"], r["chip"]): r for r in rows}

    # SqueezeNet fits on every chip: its validity map is fully valid.
    assert by_key[("squeezenet", "S")]["valid_fraction"] == 1.0
    assert by_key[("squeezenet", "L")]["valid_fraction"] == 1.0

    # Larger models have a larger invalid portion (Fig. 5, left-to-right).
    for chip in ("S", "L"):
        assert (
            by_key[("vgg16", chip)]["valid_fraction"]
            < by_key[("resnet18", chip)]["valid_fraction"]
            <= by_key[("squeezenet", chip)]["valid_fraction"]
        )

    # A smaller chip has a larger invalid portion (Fig. 5, top-to-bottom).
    for model in ("resnet18", "vgg16"):
        assert by_key[(model, "S")]["valid_fraction"] < by_key[(model, "L")]["valid_fraction"]

    # More units after decomposition for bigger models / smaller chips.
    assert by_key[("vgg16", "S")]["num_units"] > by_key[("resnet18", "S")]["num_units"]
    assert by_key[("vgg16", "S")]["num_units"] > by_key[("vgg16", "L")]["num_units"]
