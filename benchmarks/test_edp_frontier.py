"""EDP Pareto-frontier sizes across the registry (beyond the paper).

Measures the *real* per-position frontier sizes of the EDP Pareto DP
(:class:`repro.search.DPOptimalSearch` with the cap disabled) and asserts
that no measured model overflows :data:`repro.search.dp.DEFAULT_MAX_FRONTIER`
— the condition under which the default-configured EDP DP is a certificate
of optimality, not a heuristic.

The default run covers every registry model on S/M/L except the vgg
family's S/L pairs, whose uncapped DP costs tens of seconds each; set
``COMPASS_PAPER_SCALE=1`` to sweep the full registry.  Committed full-sweep
measurements (batch 1 and 16): resnet family ≤ 7 states, squeezenet ≤ 4,
mobilenet ≤ 5, alexnet ≤ 487, vgg16 ≤ 2924, and the registry-wide maximum
4166 on vgg11-S — all inside the 8192 default cap with ~2x headroom.
"""

from __future__ import annotations

from repro import envflags
from repro.evaluation.experiments import edp_frontier_sizes
from repro.models import list_models
from repro.search.dp import DEFAULT_MAX_FRONTIER
from repro.sim.report import format_table

#: pairs excluded from the default (fast) sweep: the vgg span triangles on
#: S/L are 10-20x larger than the rest of the registry
_HEAVY_PAIRS = {(m, c) for m in ("vgg11", "vgg16") for c in ("S", "L")}


def test_edp_frontier_sizes_within_default_cap(experiment_config):
    paper_scale = envflags.paper_scale_enabled()
    rows = []
    for model in list_models():
        for chip in ("S", "M", "L"):
            if not paper_scale and (model, chip) in _HEAVY_PAIRS:
                continue
            rows.extend(
                edp_frontier_sizes(models=(model,), chips=(chip,),
                                   batch_sizes=(1, 16))
            )
    supported = [row for row in rows if row["supported"]]
    assert supported

    print("\nEDP Pareto-frontier sizes (uncapped measurement)")
    print(format_table(
        supported,
        columns=["model", "chip", "batch", "num_units", "max_frontier_size",
                 "mean_frontier_size", "partitions"],
    ))
    worst = max(supported, key=lambda row: row["max_frontier_size"])
    print(f"\nregistry maximum: {worst['max_frontier_size']} states "
          f"({worst['model']}-{worst['chip']}-{worst['batch']}); "
          f"default cap {DEFAULT_MAX_FRONTIER}")

    # no measured model overflows the default cap: the EDP DP ships exact
    for row in supported:
        assert row["exact"]
        assert row["fits_default_cap"], (
            f"{row['model']}-{row['chip']}-{row['batch']} frontier "
            f"{row['max_frontier_size']} overflows {DEFAULT_MAX_FRONTIER}"
        )
