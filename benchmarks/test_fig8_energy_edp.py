"""Fig. 8: inference energy and energy-delay product for "ResNet18-S".

Paper observations: COMPASS uses somewhat more energy per inference than
greedy (more replication means more DRAM communication) but wins on EDP —
1.28x better than greedy and 2.08x better than layerwise on average.
"""

import pytest

from repro.evaluation.experiments import fig8_energy_and_edp
from repro.sim.metrics import geometric_mean
from repro.sim.report import format_table


def test_fig8_energy_and_edp(benchmark, experiment_config, tiny_ga):
    rows = benchmark.pedantic(
        fig8_energy_and_edp,
        kwargs={"model": "resnet18", "chip_name": "S",
                "batch_sizes": tuple(experiment_config.batch_sizes), "ga_config": tiny_ga},
        rounds=1, iterations=1,
    )
    print("\nFig. 8 — inference energy and EDP per sample, ResNet18-S (reproduced)")
    print(format_table(rows, columns=["label", "scheme", "energy_per_inf_mj", "edp_mj_ms",
                                      "throughput_ips"]))

    by_batch = {}
    for row in rows:
        by_batch.setdefault(row["batch"], {})[row["scheme"]] = row

    edp_gain_greedy = []
    edp_gain_layerwise = []
    for batch, schemes in by_batch.items():
        edp_gain_greedy.append(schemes["greedy"]["edp_mj_ms"] / schemes["compass"]["edp_mj_ms"])
        edp_gain_layerwise.append(
            schemes["layerwise"]["edp_mj_ms"] / schemes["compass"]["edp_mj_ms"]
        )
    print(f"\n  geomean EDP gain vs greedy    : {geometric_mean(edp_gain_greedy):.2f}x (paper: 1.28x)")
    print(f"  geomean EDP gain vs layerwise : {geometric_mean(edp_gain_layerwise):.2f}x (paper: 2.08x)")

    # COMPASS wins EDP on average against both baselines.
    assert geometric_mean(edp_gain_greedy) > 1.0
    assert geometric_mean(edp_gain_layerwise) > 1.0

    # Energy per inference decreases as the batch amortises weight replacement.
    for scheme in ("greedy", "layerwise", "compass"):
        energies = [by_batch[b][scheme]["energy_per_inf_mj"] for b in sorted(by_batch)]
        assert energies[-1] < energies[0]
