"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The GA is run
with the reduced ``ExperimentConfig.fast()`` settings so the full harness
completes in minutes; the paper-scale GA (population 100, 30 generations) can
be enabled by setting the environment variable ``COMPASS_PAPER_SCALE=1``.
Each benchmark prints the rows it produced so the captured output doubles as
the experimental record.
"""

from __future__ import annotations

import pytest

from repro import envflags
from repro.core.ga import GAConfig
from repro.evaluation.experiments import ExperimentConfig


def benchmark_config() -> ExperimentConfig:
    """Experiment configuration used by the benchmark harness."""
    if envflags.paper_scale_enabled():
        return ExperimentConfig()
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Session-wide experiment configuration."""
    return benchmark_config()


@pytest.fixture(scope="session")
def tiny_ga() -> GAConfig:
    """A very small GA for benchmarks whose focus is not the search itself."""
    return GAConfig(population_size=16, generations=6, n_select=4, n_mutate=12,
                    early_stop_patience=4, seed=0)
