"""Serving-throughput benchmarks (beyond the paper).

Five headliners ride with the quick-bench set:

* ``test_serving_throughput`` — a Poisson request stream for ResNet18
  against a two-chip M fleet, scheduled with dynamic batching and the
  latency-aware policy over a warm plan cache.  It measures the cost of
  the serving layer itself (event loop + scheduling + plan-cache lookups)
  — plan compilation is paid once in setup, exactly as a warmed-up
  production deployment would.
* ``test_serving_switch_cost`` — a multi-tenant ResNet18 + SqueezeNet mix
  on a heterogeneous S:2,M:1 fleet with plan-switch weight-replacement
  cost modelled, per-model SLO targets and the ``fair`` deficit
  round-robin policy: the switch-aware scheduling paths (effective-latency
  chip ranking, per-candidate-batch reference chips) under load.
* ``test_serving_faults`` — the same two-chip fleet under a chip failure
  with retries, a straggler window, a per-request timeout and admission
  control: the fault-aware accounting path (chip-free finalisation,
  in-flight kill + retry, timeout bookkeeping) under load.
* ``test_serving_control`` — the same fault scenario with the
  self-healing control plane running on a 200 µs tick: health-signal
  bookkeeping at every dispatch/completion, detection + quarantine,
  hedged requests, the SLO-driven autoscaler and plan re-placement — the
  full per-tick controller overhead on top of the fault-aware path.
* ``test_serving_telemetry`` — the control scenario with the full
  telemetry layer on: per-window timeline accumulation over 2 ms
  windows, log2-histogram sketch folds at every completion and
  every-10th request lifecycle tracing.  Asserts the pure-observer cost
  stays within 10% of the telemetry-off twin, measured in CPU time over
  alternating off/on pairs so scheduler noise hits both sides equally.

The captured output doubles as the experimental record: the summary rows
carry sustained throughput, p50/p95/p99 latency, batch mix, plan-switch
counts and per-chip utilisation for the fixed seed.
"""

from __future__ import annotations

import gc
import time

from repro.serve import (
    ControlConfig,
    FaultTolerance,
    Fleet,
    PlanCache,
    PoissonTraffic,
    ServingSimulator,
    TelemetryConfig,
    fleet_capacity_rps,
    parse_inject,
)
from repro.sim.report import format_table

MODEL = "resnet18"
BATCHES = (1, 2, 4, 8, 16)
NUM_REQUESTS = 400
SEED = 0


def _setup():
    fleet = Fleet.from_spec("M:2")
    cache = PlanCache(optimizer="dp")
    cache.warmup((MODEL,), fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, (MODEL,), BATCHES)
    traffic = PoissonTraffic(MODEL, num_requests=NUM_REQUESTS, seed=SEED,
                             rate_rps=rate)
    return fleet, cache, traffic, traffic.generate()


def test_serving_throughput(benchmark):
    fleet, cache, traffic, requests = _setup()

    def serve():
        simulator = ServingSimulator(fleet, cache, policy="latency",
                                     batch_sizes=BATCHES, max_wait_us=200.0)
        return simulator.run(requests, traffic_info=traffic.describe())

    report = benchmark(serve)
    assert report.completed == NUM_REQUESTS
    assert report.throughput_rps > 0
    assert report.latency_ms["p50"] <= report.latency_ms["p99"]
    print(f"\nServing {MODEL} on {report.fleet_spec} "
          f"({report.traffic['rate_rps']:.0f} req/s offered, seed {SEED}):")
    print(format_table([report.summary_row()]))
    print(f"batch histogram: {dict(sorted(report.batch_histogram.items()))}; "
          f"mean queue depth {report.queue_depth['mean']:.2f} "
          f"(max {report.queue_depth['max']:.0f})")


def _setup_switch():
    fleet = Fleet.from_spec("S:2,M:1")
    models = (MODEL, "squeezenet")
    cache = PlanCache(optimizer="dp")
    cache.warmup(models, fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, models, BATCHES)
    traffic = PoissonTraffic(models, num_requests=NUM_REQUESTS, seed=SEED,
                             rate_rps=rate, model_weights=(0.7, 0.3))
    return fleet, cache, traffic, traffic.generate()


def test_serving_switch_cost(benchmark):
    fleet, cache, traffic, requests = _setup_switch()
    slos = {MODEL: 10.0, "squeezenet": 3.0}

    def serve():
        simulator = ServingSimulator(fleet, cache, policy="fair",
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     switch_cost=True, slos=slos)
        return simulator.run(requests, traffic_info=traffic.describe())

    report = benchmark(serve)
    assert report.completed == NUM_REQUESTS
    assert report.plan_switches > 0
    assert set(report.slo) == set(slos)
    print(f"\nServing {'+'.join(report.models)} on {report.fleet_spec} "
          f"(switch cost on, fair policy, seed {SEED}):")
    print(format_table([report.summary_row()]))
    print(f"plan switches: {report.plan_switches} "
          f"({report.switch_ms:.3f} ms weight replacement); SLO attainment: "
          + ", ".join(f"{m} {b['attainment']:.1%}"
                      for m, b in sorted(report.slo.items())))


def test_serving_faults(benchmark):
    fleet, cache, traffic, requests = _setup()
    # pin the fault window to the offered stream: the chip dies a fifth of
    # the way in and recovers at the midpoint, then the survivor straggles
    span_us = NUM_REQUESTS / traffic.rate_rps * 1e6
    faults = [
        parse_inject(f"chip_fail@{0.2 * span_us:.0f}:chip=0,"
                     f"until={0.5 * span_us:.0f}"),
        parse_inject(f"straggler@{0.5 * span_us:.0f}:chip=1,factor=1.5,"
                     f"until={0.8 * span_us:.0f}"),
    ]
    fault_tolerance = FaultTolerance(timeout_us=0.5 * span_us, max_retries=2,
                                    shed_queue_depth=64)

    def serve():
        simulator = ServingSimulator(fleet, cache, policy="latency",
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     faults=faults,
                                     fault_tolerance=fault_tolerance)
        return simulator.run(requests, traffic_info=traffic.describe())

    report = benchmark(serve)
    assert report.fault_tolerance
    assert report.failures == 1
    assert report.completed + report.shed + report.timeouts + report.lost \
        == NUM_REQUESTS
    assert report.availability < 1.0
    print(f"\nServing {MODEL} on {report.fleet_spec} under faults "
          f"(chip failure + straggler, retries + shedding, seed {SEED}):")
    print(format_table([report.summary_row()]))
    print(f"failures: {report.failures}, retries: {report.retries}, "
          f"timeouts: {report.timeouts}, shed: {report.shed}, "
          f"lost: {report.lost}; availability {report.availability:.2%} "
          f"({report.lost_work_ms:.3f} ms lost work)")


def test_serving_control(benchmark):
    fleet, cache, traffic, requests = _setup()
    # the fault scenario of test_serving_faults, now supervised: the
    # controller must detect the failure, hedge the straggler's slow
    # requests, and autoscale through the capacity dip
    span_us = NUM_REQUESTS / traffic.rate_rps * 1e6
    faults = [
        parse_inject(f"chip_fail@{0.2 * span_us:.0f}:chip=0,"
                     f"until={0.5 * span_us:.0f}"),
        parse_inject(f"straggler@{0.5 * span_us:.0f}:chip=1,factor=1.5,"
                     f"until={0.8 * span_us:.0f}"),
    ]
    fault_tolerance = FaultTolerance(timeout_us=0.5 * span_us, max_retries=2,
                                     retry_priority=True)
    control = ControlConfig(interval_us=200.0, hedge_after_pct=90.0,
                            autoscale=True, min_chips=2, max_chips=4,
                            cooldown_us=1000.0)

    def serve():
        simulator = ServingSimulator(fleet, cache, policy="latency",
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     slos={MODEL: 12.0}, switch_cost=True,
                                     faults=faults,
                                     fault_tolerance=fault_tolerance,
                                     control=control)
        return simulator.run(requests, traffic_info=traffic.describe())

    report = benchmark(serve)
    control_block = report.control
    assert control_block["ticks"] > 0
    assert report.completed + report.shed + report.timeouts + report.lost \
        == NUM_REQUESTS
    print(f"\nServing {MODEL} on {report.fleet_spec} self-healing "
          f"(control tick 200 us, hedging + autoscale, seed {SEED}):")
    print(format_table([report.summary_row()]))
    print(f"ticks: {control_block['ticks']}, detections: "
          f"{control_block['detections']} "
          f"({control_block['true_detections']} true), quarantines: "
          f"{control_block['quarantines']}, hedges: {control_block['hedges']}, "
          f"scale: +{control_block['scale_ups']}/-{control_block['scale_downs']}, "
          f"re-placements: {control_block['replacements']}; SLO attainment "
          f"{report.slo[MODEL]['attainment']:.1%}")


def test_serving_telemetry(benchmark):
    fleet, cache, traffic, requests = _setup()
    # the self-healing scenario of test_serving_control with the full
    # telemetry layer on top: per-window timeline accumulation over 2 ms
    # windows, sketch folds at every completion, and every-10th
    # request traced — the whole observability hot path under load
    span_us = NUM_REQUESTS / traffic.rate_rps * 1e6
    faults = [
        parse_inject(f"chip_fail@{0.2 * span_us:.0f}:chip=0,"
                     f"until={0.5 * span_us:.0f}"),
        parse_inject(f"straggler@{0.5 * span_us:.0f}:chip=1,factor=1.5,"
                     f"until={0.8 * span_us:.0f}"),
    ]
    fault_tolerance = FaultTolerance(timeout_us=0.5 * span_us, max_retries=2,
                                     retry_priority=True)
    control = ControlConfig(interval_us=200.0, hedge_after_pct=90.0,
                            autoscale=True, min_chips=2, max_chips=4,
                            cooldown_us=1000.0)

    def serve(telemetry):
        # the autoscaler mutates its Fleet in place (added chips persist
        # after the run), so every run builds a fresh fleet — otherwise
        # the timed on/off twins would not start from the same state
        simulator = ServingSimulator(Fleet.from_spec("M:2"), cache,
                                     policy="latency",
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     slos={MODEL: 12.0}, switch_cost=True,
                                     faults=faults,
                                     fault_tolerance=fault_tolerance,
                                     control=control, telemetry=telemetry)
        return simulator.run(requests, traffic_info=traffic.describe())

    telemetry = TelemetryConfig(timeline_interval_us=2000.0, trace_every=10)
    report = benchmark(serve, telemetry)
    assert report.timeline
    assert report.telemetry["counters"]["arrivals"] == NUM_REQUESTS
    # telemetry must stay a cheap observer: <= 10% overhead vs the
    # telemetry-off twin.  The twins are timed in CPU time (immune to
    # preemption by other processes) with the collector parked, over
    # alternating off/on pairs so machine drift hits both sides equally;
    # a min-of-N estimator converges from above, so once the running
    # estimate clears the bar more pairs cannot change the verdict
    on_s = off_s = float("inf")
    overhead = float("inf")
    for pair in range(16):
        off_s = min(off_s, _timed_cpu(serve, None))
        on_s = min(on_s, _timed_cpu(serve, telemetry))
        overhead = on_s / off_s - 1.0
        if pair >= 4 and overhead <= 0.10:
            break
    assert overhead <= 0.10, f"telemetry overhead {overhead:.1%}"
    print(f"\nServing {MODEL} on {report.fleet_spec} with telemetry "
          f"(timeline 2 ms, trace every 10th, seed {SEED}):")
    print(format_table([report.summary_row()]))
    print(f"windows: {len(report.timeline)}, completions counted: "
          f"{report.telemetry['counters'].get('completions', 0)}, "
          f"overhead vs telemetry-off: {overhead:+.1%}")


def _timed_cpu(fn, *args):
    gc.collect()
    gc.disable()
    start = time.process_time()
    try:
        fn(*args)
    finally:
        gc.enable()
    return time.process_time() - start
