"""Ablation: contribution of the four mutation schemes (Sec. III-C3).

DESIGN.md calls out the joint use of merge/split/move/fixed-random as a
design choice; this ablation runs the GA with restricted operator sets on
"ResNet18-M-16" and compares the best fitness found with the same evaluation
budget.  The full operator set should be at least as good as any single
operator family.
"""

import pytest

from repro.core.fitness import FitnessEvaluator
from repro.core.ga import CompassGA, GAConfig
from repro.core.mutation import MutationKind
from repro.evaluation.registry import shared_decomposition
from repro.hardware import CHIP_M
from repro.sim.report import format_table

ABLATIONS = {
    "all_four": list(MutationKind),
    "no_merge_move": [MutationKind.SPLIT, MutationKind.FIXED_RANDOM],
    "local_only": [MutationKind.MERGE, MutationKind.SPLIT, MutationKind.MOVE],
    "random_only": [MutationKind.FIXED_RANDOM],
}

GA = GAConfig(population_size=20, generations=10, n_select=5, n_mutate=15,
              early_stop_patience=10, seed=0)


def run_ablation():
    decomposition, validity = shared_decomposition("resnet18", "M")
    rows = []
    results = {}
    for name, kinds in ABLATIONS.items():
        evaluator = FitnessEvaluator(decomposition, batch_size=16)
        ga = CompassGA(decomposition, evaluator, GA, validity, mutation_kinds=kinds)
        result = ga.run()
        results[name] = result
        rows.append(
            {
                "operators": name,
                "best_latency_ms": result.best_fitness * 1e-6,
                "best_num_partitions": result.best_group.num_partitions,
                "generations_run": result.generations_run,
            }
        )
    return rows, results


def test_ablation_mutation_operators(benchmark):
    rows, results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print("\nAblation — mutation operator sets (ResNet18-M-16)")
    print(format_table(rows))

    best = {row["operators"]: row["best_latency_ms"] for row in rows}
    # the full operator set is never worse than any restricted set
    for name, value in best.items():
        assert best["all_four"] <= value * 1.02, name
    # every variant still produces a valid partition group
    for result in results.values():
        assert result.best_group.is_valid(CHIP_M.total_crossbars)
