"""Benchmarks for the partition-search subsystem (beyond the paper).

Two headliners ride with the quick-bench set:

* ``test_dp_optimal_search`` — one exact DP solve of ResNet18-M-16: the
  full valid-span triangle fill plus the Bellman sweep.  This is the cost a
  sweep pays per compass point when routed through ``--optimizer dp``.
* ``test_optimality_gap_experiment`` — the DP-vs-GA gap experiment on a
  small (model, chip) subset, printing the gap table as the experimental
  record.
"""

from __future__ import annotations

from repro.core.fitness import FitnessEvaluator
from repro.evaluation.experiments import optimality_gap
from repro.evaluation.registry import shared_decomposition
from repro.search import DPOptimalSearch
from repro.sim.report import format_table


def run_dp(model: str = "resnet18", chip: str = "M", batch: int = 16):
    """One exact DP solve over a fresh evaluator on the shared pair."""
    decomposition, validity = shared_decomposition(model, chip)
    evaluator = FitnessEvaluator(decomposition, batch_size=batch)
    return DPOptimalSearch(decomposition, evaluator, validity).run()


def test_dp_optimal_search(benchmark):
    result = benchmark(run_dp)
    assert result.exact
    assert result.best_group.num_partitions >= 1
    print(
        f"\nDP optimum resnet18-M-16: {result.best_fitness:.6g} ns over "
        f"{result.best_group.num_partitions} partitions "
        f"({result.evaluations} span evaluations)"
    )


def test_optimality_gap_experiment(benchmark, experiment_config):
    rows = benchmark(
        optimality_gap,
        models=("squeezenet", "resnet18"),
        chips=("S", "M"),
        batch_sizes=(1, 16),
        ga_config=experiment_config.ga_config,
    )
    assert rows
    supported = [row for row in rows if row["supported"]]
    assert supported
    # the DP result is the true optimum: the GA can never beat it
    assert all(row["gap_pct"] >= 0.0 for row in supported)
    print()
    print(format_table(
        supported,
        columns=["model", "chip", "batch", "dp_latency_ns", "ga_latency_ns",
                 "gap_pct", "dp_partitions", "ga_partitions"],
    ))
