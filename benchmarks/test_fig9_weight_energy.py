"""Fig. 9: energy of weight writes and loads relative to MVMUL energy.

Paper observations for ResNet18: at batch size 1 the weight load energy
dominates compute (≈4x for the large chip, ≈3.65x for the small chip); by
batch 16 the replacement overhead is amortised to ≈1.2x.  The overhead is
larger for larger chips at the same batch size (more capacity gets rewritten)
and strictly decreases with batch size.
"""

import pytest

from repro.evaluation.experiments import fig9_weight_energy_vs_batch
from repro.sim.report import format_table


def test_fig9_weight_energy_vs_batch(benchmark, experiment_config, tiny_ga):
    rows = benchmark.pedantic(
        fig9_weight_energy_vs_batch,
        kwargs={"model": "resnet18", "chips": ("S", "M", "L"),
                "batch_sizes": tuple(experiment_config.batch_sizes),
                "scheme": "compass", "ga_config": tiny_ga},
        rounds=1, iterations=1,
    )
    print("\nFig. 9 — weight write/load energy relative to MVMUL, ResNet18 (reproduced)")
    print(format_table(rows, columns=["label", "chip", "batch", "weight_load_rel",
                                      "weight_write_rel", "total_overhead_rel"]))

    by_chip = {}
    for row in rows:
        by_chip.setdefault(row["chip"], {})[row["batch"]] = row

    batches = sorted({row["batch"] for row in rows})
    smallest, largest = batches[0], batches[-1]

    for chip, per_batch in by_chip.items():
        overheads = [per_batch[b]["total_overhead_rel"] for b in batches]
        # overhead strictly decreases with batch size
        assert all(b <= a * 1.001 for a, b in zip(overheads, overheads[1:])), chip
        # at batch 1 weight traffic dominates MVM energy
        if smallest == 1:
            assert per_batch[1]["total_overhead_rel"] > 1.0, chip
        # at batch 16 it is amortised well below the batch-1 level
        assert per_batch[largest]["total_overhead_rel"] < per_batch[smallest][
            "total_overhead_rel"
        ] / 2, chip

    # load energy exceeds write energy (DRAM traffic is the expensive part)
    for row in rows:
        assert row["weight_load_rel"] > row["weight_write_rel"]
