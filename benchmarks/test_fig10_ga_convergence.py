"""Fig. 10: evolution of the GA population's fitness over generations.

Paper observations for "ResNet18-M-16": the population steadily evolves
towards the selected individuals, an optimal number of partitions is reached
within ~10 generations, and fitness keeps improving within that partition
count afterwards.
"""

import numpy as np
import pytest

from repro import envflags
from repro.core.ga import GAConfig
from repro.evaluation.experiments import fig10_ga_convergence


def test_fig10_ga_convergence(benchmark):
    ga_config = GAConfig(population_size=30, generations=15, n_select=8, n_mutate=22,
                         early_stop_patience=15, seed=0)
    result = benchmark.pedantic(
        fig10_ga_convergence,
        kwargs={"model": "resnet18", "chip_name": "M", "batch_size": 16,
                "ga_config": ga_config},
        rounds=1, iterations=1,
    )

    history = result.history
    print("\nFig. 10 — GA fitness convergence, ResNet18-M-16 (reproduced)")
    print(f"evaluations: {result.evaluations} total, {result.unique_evaluations} unique, "
          f"{result.dedup_hits} dedup hits ({result.dedup_hit_rate:.0%})")
    print(f"span-table stats: {result.span_stats}")
    print("gen  best_fitness  mean_fitness  best_#partitions  population_#partitions(min-max)")
    for record in history:
        best_parts = record.num_partitions[int(np.argmin(record.fitnesses))]
        print(f"{record.generation:3d}  {record.best_fitness:12.3e}  {record.mean_fitness:12.3e}"
              f"  {best_parts:16d}  {min(record.num_partitions)}-{max(record.num_partitions)}")

    best = [r.best_fitness for r in history]
    mean = [r.mean_fitness for r in history]

    # the best individual never gets worse (elitist selection)
    assert all(b <= a * (1 + 1e-9) for a, b in zip(best, best[1:]))
    # the population improves overall: final mean better than initial mean
    assert mean[-1] < mean[0]
    # the search actually helps: final best clearly better than the initial best
    assert best[-1] <= best[0]
    # the number of partitions of the best individual stabilises in the second half
    second_half = [r.num_partitions[int(np.argmin(r.fitnesses))] for r in history[len(history) // 2:]]
    assert max(second_half) - min(second_half) <= 3
    # selected survivors are marked in every generation after the first
    for record in history[1:]:
        assert any(record.selected_mask)

    # the span engine is actually engaged: every chromosome evaluation was
    # accounted for, and repeated span lookups were served from the caches
    # (matrix-served gathers are folded into the latency hit counters)
    assert result.evaluations == result.unique_evaluations + result.dedup_hits
    assert result.span_stats, "GA ran without the span-table engine"
    latency_lookups = (result.span_stats["latencies_computed"]
                       + result.span_stats["latency_hits"])
    assert latency_lookups > 0
    assert result.span_stats["latency_hit_rate"] > 0.3
    if envflags.span_matrix_enabled():
        # the dense span-matrix path carried the population scoring
        assert result.span_stats["matrix_fills"] + result.span_stats["matrix_hits"] > 0
