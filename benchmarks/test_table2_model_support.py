"""Table II: network weight footprints (4-bit) and compiler support.

Paper values: VGG16 58.95 + 7.02 = 65.97 MB, ResNet18 0.244 + 5.324 =
5.569 MB, SqueezeNet 0.587 MB; previous all-on-chip compilers only support
SqueezeNet on the resource-constrained chips, COMPASS supports all three.
"""

import pytest

from repro.evaluation.experiments import table2_model_support
from repro.sim.report import format_table

PAPER_TABLE2 = {
    "vgg16": {"linear_mb": 58.95, "conv_mb": 7.02, "total_mb": 65.97, "prev": False},
    "resnet18": {"linear_mb": 0.244, "conv_mb": 5.324, "total_mb": 5.569, "prev": False},
    "squeezenet": {"linear_mb": 0.0, "conv_mb": 0.58725, "total_mb": 0.58725, "prev": True},
}


def test_table2_model_support(benchmark):
    rows = benchmark.pedantic(table2_model_support, rounds=1, iterations=1)
    print("\nTable II — network models and compiler support (reproduced)")
    print(format_table(rows, columns=["network", "linear_mb", "conv_mb", "total_mb",
                                      "prev", "ours"]))

    by_model = {r["network"]: r for r in rows}
    for model, expected in PAPER_TABLE2.items():
        row = by_model[model]
        assert row["linear_mb"] == pytest.approx(expected["linear_mb"], rel=0.02, abs=0.01)
        assert row["conv_mb"] == pytest.approx(expected["conv_mb"], rel=0.02)
        assert row["total_mb"] == pytest.approx(expected["total_mb"], rel=0.02)
        assert row["prev"] == expected["prev"]
        assert row["ours"] is True
