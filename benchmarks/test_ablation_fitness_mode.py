"""Ablation: optimisation target — latency (throughput) vs energy-delay product.

Sec. III-C1: "the model is optimized by its fitness (power or throughput) as
specified by the user".  This ablation runs the COMPASS GA on ResNet18-S with
both fitness modes and checks that each mode wins on its own metric (or ties),
i.e. the fitness knob actually steers the search.
"""

import pytest

from repro.core.compiler import CompilerOptions, CompassCompiler
from repro.core.fitness import FitnessMode
from repro.core.ga import GAConfig
from repro.evaluation.registry import shared_decomposition, shared_graph
from repro.hardware import CHIP_S
from repro.sim.report import format_table

GA = GAConfig(population_size=20, generations=10, n_select=5, n_mutate=15,
              early_stop_patience=10, seed=0)


def run_modes():
    graph = shared_graph("resnet18")
    decomposition, validity = shared_decomposition("resnet18", "S")
    results = {}
    for mode in (FitnessMode.LATENCY, FitnessMode.EDP):
        options = CompilerOptions(
            scheme="compass", batch_size=8,
            ga_config=GA, fitness_mode=mode, generate_instructions=False,
        )
        results[mode.value] = CompassCompiler(CHIP_S, options).compile(
            graph, decomposition=decomposition, validity=validity,
        )
    return results


def test_ablation_fitness_mode(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    rows = []
    for mode, result in results.items():
        rows.append(
            {
                "fitness_mode": mode,
                "partitions": result.num_partitions,
                "throughput_ips": result.report.throughput,
                "energy_per_inf_mj": result.report.energy_per_inference_mj,
                "edp_mj_ms": result.report.edp_per_inference,
            }
        )
    print("\nAblation — fitness mode (ResNet18-S, batch 8)")
    print(format_table(rows))

    latency_opt = results["latency"]
    edp_opt = results["edp"]
    # the latency-optimised schedule is at least as fast (small GA noise allowed)
    assert latency_opt.report.throughput >= edp_opt.report.throughput * 0.95
    # the EDP-optimised schedule has at least as good an EDP (small GA noise allowed)
    assert edp_opt.report.edp_per_inference <= latency_opt.report.edp_per_inference * 1.05
    # both remain valid compilations
    assert latency_opt.group.is_valid(CHIP_S.total_crossbars)
    assert edp_opt.group.is_valid(CHIP_S.total_crossbars)
