"""Live-observatory streaming benchmark (beyond the paper).

One headliner rides with the quick-bench set:

* ``test_serving_service`` — the telemetry fault scenario with a stream
  sink attached and a fine 500 µs window, so completed timeline windows
  flush incrementally mid-run (the observatory's hot path: provably-final
  window detection at every boundary sample, per-window rendering, hub
  peeks) instead of folding once at the end of the run.  Asserts the
  incremental-flush path stays within 10% of the batch-fold twin,
  measured in CPU time over alternating batch/stream pairs so scheduler
  noise hits both sides equally — streaming only changes *when* windows
  render, and it must not change what the rendering costs.

The captured output records the window count, mid-run flush batches and
the measured overhead for the fixed seed.
"""

from __future__ import annotations

import gc
import json
import time

from repro.serve import (
    FaultTolerance,
    Fleet,
    PlanCache,
    PoissonTraffic,
    ServingSimulator,
    TelemetryConfig,
    fleet_capacity_rps,
    parse_inject,
)
from repro.serve.telemetry import TimelineAccumulator
from repro.sim.report import format_table

MODEL = "resnet18"
BATCHES = (1, 2, 4, 8, 16)
NUM_REQUESTS = 400
SEED = 0


def _setup():
    fleet = Fleet.from_spec("M:2")
    cache = PlanCache(optimizer="dp")
    cache.warmup((MODEL,), fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, (MODEL,), BATCHES)
    traffic = PoissonTraffic(MODEL, num_requests=NUM_REQUESTS, seed=SEED,
                             rate_rps=rate)
    return fleet, cache, traffic, traffic.generate()


def test_serving_service(benchmark):
    fleet, cache, traffic, requests = _setup()
    # the fault scenario of test_serving_faults with a fine-grained
    # timeline: hundreds of windows, most provably final mid-run
    span_us = NUM_REQUESTS / traffic.rate_rps * 1e6
    faults = [
        parse_inject(f"chip_fail@{0.2 * span_us:.0f}:chip=0,"
                     f"until={0.5 * span_us:.0f}"),
        parse_inject(f"straggler@{0.5 * span_us:.0f}:chip=1,factor=1.5,"
                     f"until={0.8 * span_us:.0f}"),
    ]
    fault_tolerance = FaultTolerance(timeout_us=0.5 * span_us, max_retries=2,
                                     shed_queue_depth=64)
    telemetry = TelemetryConfig(timeline_interval_us=500.0)

    def serve(sink):
        simulator = ServingSimulator(fleet, cache, policy="latency",
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     faults=faults,
                                     fault_tolerance=fault_tolerance,
                                     telemetry=telemetry)
        if sink is not None:
            simulator.stream_sink = sink
        return simulator.run(requests, traffic_info=traffic.describe())

    null_sink = lambda kind, payload: None  # noqa: E731
    report = benchmark(serve, null_sink)
    assert report.timeline

    # the streamed rows concatenate to the exact batch-fold timeline;
    # the untimed recording run also counts mid-run flush batches (the
    # timed runs stay uninstrumented)
    streamed = []
    flush_batches = [0]

    def recording_sink(kind, payload):
        if kind == "window":
            streamed.append(payload)

    real_flush_ready = TimelineAccumulator.flush_ready

    def counting_flush_ready(self, end_floor_ns):
        flushed = real_flush_ready(self, end_floor_ns)
        if flushed:
            flush_batches[0] += 1
        return flushed

    TimelineAccumulator.flush_ready = counting_flush_ready
    try:
        stream_report = serve(recording_sink)
    finally:
        TimelineAccumulator.flush_ready = real_flush_ready
    batch_report = serve(None)
    assert json.dumps(streamed, sort_keys=True) == \
        json.dumps(batch_report.timeline, sort_keys=True)
    assert stream_report.determinism_dict() == \
        batch_report.determinism_dict()
    assert flush_batches[0] >= 2  # genuinely incremental, not one tail dump

    # incremental flushing must cost what batch folding costs: <= 10%
    # overhead in CPU time, min-of-N over alternating batch/stream pairs
    # (the min-of-N estimator converges from above, so once the running
    # estimate clears the bar more pairs cannot change the verdict)
    stream_s = batch_s = float("inf")
    overhead = float("inf")
    for pair in range(16):
        batch_s = min(batch_s, _timed_cpu(serve, None))
        stream_s = min(stream_s, _timed_cpu(serve, null_sink))
        overhead = stream_s / batch_s - 1.0
        if pair >= 4 and overhead <= 0.06:
            # comfortably clear — more pairs cannot flip the verdict
            # (min-of-N only ever lowers both sides)
            break
    assert overhead <= 0.10, f"incremental-flush overhead {overhead:.1%}"
    print(f"\nStreaming {MODEL} on {report.fleet_spec} through the "
          f"observatory sink (500 us windows, seed {SEED}):")
    print(format_table([report.summary_row()]))
    print(f"windows: {len(batch_report.timeline)} "
          f"({len(streamed)} streamed across {flush_batches[0]} mid-run "
          f"flushes); overhead vs batch fold: {overhead:+.1%}")


def _timed_cpu(fn, *args):
    gc.collect()
    gc.disable()
    start = time.process_time()
    try:
        fn(*args)
    finally:
        gc.enable()
    return time.process_time() - start
