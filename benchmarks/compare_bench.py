#!/usr/bin/env python
"""Diff two ``BENCH_<date>.json`` records and print per-benchmark speedups.

Usage::

    python benchmarks/compare_bench.py BENCH_20260729.json BENCH_20260730.json
    python benchmarks/compare_bench.py old.json new.json --fail-above 20

Reads two pytest-benchmark JSON files (as written by
``benchmarks/run_bench.py``) and prints, per benchmark, the old and new mean
runtime and the speedup (old / new; values below 1.0 are regressions).

Benchmarks present in only one record are listed separately and are *never*
failures: the suite grows headliners over time (e.g. the partition-search
DP/gap benchmarks), so a fresh record is routinely compared against a
baseline that predates some keys.  Only benchmarks common to both records
participate in the regression check.  With ``--fail-above P`` the exit
status is non-zero when any common benchmark regressed by more than P
percent — this is what ``scripts/check_bench_regression.py`` builds on; if
the records share no benchmarks at all, a notice is printed and the
comparison passes.

A warning is printed when the two records come from different machine
profiles (CPU brand or core count), since cross-machine timings are not
comparable.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Tuple


def load_means(path: str) -> Tuple[Dict[str, float], Dict[str, object]]:
    """(benchmark fullname -> mean seconds, machine profile) of one record."""
    with open(path) as handle:
        data = json.load(handle)
    means = {
        bench["fullname"]: bench["stats"]["mean"]
        for bench in data.get("benchmarks", [])
        if bench.get("stats") and bench["stats"].get("mean") is not None
    }
    cpu = data.get("machine_info", {}).get("cpu", {})
    profile = {
        "brand": cpu.get("brand_raw", ""),
        "count": cpu.get("count", 0),
    }
    return means, profile


def compare(old_path: str, new_path: str, fail_above_pct: float = None) -> int:
    old, old_profile = load_means(old_path)
    new, new_profile = load_means(new_path)

    if old_profile != new_profile:
        print(f"WARNING: machine profiles differ ({old_profile} vs {new_profile}); "
              "timings are not comparable across machines")

    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    regressions = []
    if common:
        width = max(len(name) for name in common)
        print(f"{'benchmark':<{width}}  {'old (s)':>10}  {'new (s)':>10}  {'speedup':>8}")
        for name in common:
            speedup = old[name] / new[name] if new[name] else float("inf")
            change_pct = (new[name] / old[name] - 1.0) * 100 if old[name] else 0.0
            marker = ""
            if fail_above_pct is not None and change_pct > fail_above_pct:
                marker = f"  << REGRESSION (+{change_pct:.0f}%)"
                regressions.append((name, change_pct))
            print(f"{name:<{width}}  {old[name]:>10.4f}  {new[name]:>10.4f}  {speedup:>7.2f}x{marker}")
    else:
        print("no benchmarks in common; nothing to compare (records pass)")
    # benchmarks in only one record are informational, never failures: new
    # headliners must not fail the diff against records that predate them
    for name in only_old:
        print(f"only in {old_path}: {name} ({old[name]:.4f}s)")
    for name in only_new:
        print(f"only in {new_path}: {name} ({new[name]:.4f}s)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{fail_above_pct:.0f}% vs {old_path}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_<date>.json")
    parser.add_argument("new", help="candidate BENCH_<date>.json")
    parser.add_argument(
        "--fail-above", type=float, default=None, metavar="PCT",
        help="exit non-zero if any common benchmark regressed more than PCT percent",
    )
    args = parser.parse_args(argv)
    return compare(args.old, args.new, args.fail_above)


if __name__ == "__main__":
    sys.exit(main())
