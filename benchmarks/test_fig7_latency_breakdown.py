"""Fig. 7: per-partition latency breakdown for "ResNet18-M-16".

Paper observations: COMPASS is ~2.26x faster than greedy and ~1.67x faster
than layerwise on this configuration; greedy's first partition occupies over
95% of its total execution time because it packs too many layers with too
little replication.
"""

import pytest

from repro.evaluation.experiments import fig7_latency_breakdown


def test_fig7_latency_breakdown(benchmark, tiny_ga):
    breakdown = benchmark.pedantic(
        fig7_latency_breakdown,
        kwargs={"model": "resnet18", "chip_name": "M", "batch_size": 16, "ga_config": tiny_ga},
        rounds=1, iterations=1,
    )

    print("\nFig. 7 — per-partition latency breakdown, ResNet18-M-16 (reproduced)")
    for scheme, data in breakdown.items():
        latencies = ", ".join(f"{v:.2f}" for v in data["latencies_ms"])
        print(f"  {scheme:<10s} total {data['total_ms']:8.2f} ms over "
              f"{data['num_partitions']:2d} partitions "
              f"(P0 share {data['first_partition_share']:.1%}): [{latencies}]")

    greedy = breakdown["greedy"]
    layerwise = breakdown["layerwise"]
    compass = breakdown["compass"]

    # COMPASS is the fastest of the three schemes on this configuration.
    assert compass["total_ms"] < greedy["total_ms"]
    assert compass["total_ms"] < layerwise["total_ms"]
    speedup_greedy = greedy["total_ms"] / compass["total_ms"]
    speedup_layerwise = layerwise["total_ms"] / compass["total_ms"]
    print(f"\n  speed-up vs greedy    : {speedup_greedy:.2f}x (paper: 2.26x)")
    print(f"  speed-up vs layerwise : {speedup_layerwise:.2f}x (paper: 1.67x)")

    # Greedy's first partition dominates its execution time (paper: >95%).
    assert greedy["first_partition_share"] > 0.5

    # Layerwise produces (many) more partitions than greedy; COMPASS sits in between
    # or below greedy but always covers the model.
    assert layerwise["num_partitions"] > greedy["num_partitions"]
    assert compass["num_partitions"] >= greedy["num_partitions"]
