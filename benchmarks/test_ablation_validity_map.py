"""Ablation: the validity map versus naive random partition sampling.

Sec. III-B1 motivates the validity map: picking partition boundaries uniformly
at random mostly yields invalid partitions for large models on small chips, so
many rejection-sampling iterations are needed per valid individual.  This
ablation measures the rejection rate of naive sampling against the
validity-map sampler (which is valid by construction) for VGG16 on Chip-S.
"""

import numpy as np
import pytest

from repro.core.partition import PartitionGroup
from repro.evaluation.registry import shared_decomposition
from repro.hardware import CHIP_S
from repro.sim.report import format_table


def naive_random_boundaries(num_units: int, rng: np.random.Generator,
                            mean_partition_units: int) -> list:
    """Pick boundaries uniformly at random without consulting the validity map."""
    boundaries = []
    start = 0
    while start < num_units:
        end = int(rng.integers(start + 1, min(num_units, start + 2 * mean_partition_units) + 1))
        boundaries.append(end)
        start = end
    return boundaries


def run_comparison(samples: int = 200):
    decomposition, validity = shared_decomposition("vgg16", "S")
    rng = np.random.default_rng(0)
    capacity = CHIP_S.total_crossbars

    # average partition length produced by the validity-map sampler, so the
    # naive sampler aims for a comparable granularity
    vm_bounds = [validity.random_partition_boundaries(rng) for _ in range(20)]
    mean_units = int(np.mean([decomposition.num_units / len(b) for b in vm_bounds])) or 1

    naive_valid = 0
    for _ in range(samples):
        bounds = naive_random_boundaries(decomposition.num_units, rng, mean_units)
        group = PartitionGroup.from_boundaries(decomposition, bounds)
        if group.is_valid(capacity):
            naive_valid += 1

    vm_valid = 0
    for _ in range(samples):
        bounds = validity.random_partition_boundaries(rng)
        group = PartitionGroup.from_boundaries(decomposition, bounds)
        if group.is_valid(capacity):
            vm_valid += 1

    return {
        "num_units": decomposition.num_units,
        "valid_fraction_of_spans": validity.valid_fraction(),
        "naive_valid_rate": naive_valid / samples,
        "validity_map_valid_rate": vm_valid / samples,
    }


def test_ablation_validity_map(benchmark):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print("\nAblation — validity map vs naive random sampling (VGG16, Chip-S)")
    print(format_table([stats]))

    # the validity-map sampler is valid by construction
    assert stats["validity_map_valid_rate"] == 1.0
    # naive sampling fails most of the time for a large model on a small chip
    assert stats["naive_valid_rate"] < 0.5
    # and the span-level valid fraction is small (Fig. 5, bottom-right)
    assert stats["valid_fraction_of_spans"] < 0.25
