#!/usr/bin/env python
"""Run the benchmark suite and store a dated pytest-benchmark JSON record.

Usage::

    python benchmarks/run_bench.py [extra pytest args...]

Writes ``BENCH_<YYYYMMDD>.json`` (pytest-benchmark's ``--benchmark-json``
format) into the repository root, so successive runs leave a consistent
performance trajectory in the repo.  Full runs include the full-size GA
benchmark (``test_ga_fullsize.py``: paper-default population 100 x 30
generations).  Compare two records with::

    python benchmarks/compare_bench.py BENCH_<old>.json BENCH_<new>.json

and guard against regressions with ``scripts/check_bench_regression.py``
(or ``REPRO_CHECK_BENCH=1 pytest tests/test_bench_regression.py``).

Environment variables:

``REPRO_BENCH_QUICK=1``
    Quick mode: run only the headline benchmarks
    (``test_fig6_throughput_comparison``, ``test_fig10_ga_convergence``,
    the partition-search headliners ``test_dp_optimal_search`` /
    ``test_optimality_gap_experiment``, and the serving headliners
    ``test_serving_throughput`` / ``test_serving_switch_cost`` /
    ``test_serving_faults`` / ``test_serving_control``).
``REPRO_BENCH_OUT=<path>``
    Override the output JSON path.
``COMPASS_PAPER_SCALE=1``
    Forwarded to the harness (paper-scale GA instead of the fast preset,
    see ``benchmarks/conftest.py``).
``REPRO_SPAN_MATRIX=0``
    Disable the dense span-matrix engine (scalar span-table path), e.g. to
    measure the dense layer's contribution in isolation.
"""

from __future__ import annotations

import datetime
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import envflags  # noqa: E402


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    date = datetime.date.today().strftime("%Y%m%d")
    out = envflags.bench_out() or os.path.join(REPO_ROOT, f"BENCH_{date}.json")

    cmd = [
        sys.executable, "-m", "pytest",
        os.path.join(REPO_ROOT, "benchmarks"),
        "-q",
        f"--benchmark-json={out}",
    ]
    if envflags.bench_quick_enabled():
        cmd += ["-k", "fig6_throughput or fig10_ga or dp_optimal or optimality_gap"
                      " or serving_throughput or serving_switch_cost"
                      " or serving_faults or serving_control"
                      " or serving_telemetry or serving_service"]
    cmd += argv

    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    print("running:", " ".join(cmd))
    result = subprocess.run(cmd, env=env, cwd=REPO_ROOT)
    if result.returncode == 0:
        print(f"benchmark record written to {out}")
    return result.returncode


if __name__ == "__main__":
    sys.exit(main())
