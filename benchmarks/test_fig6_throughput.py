"""Fig. 6: inference throughput of COMPASS vs greedy vs layerwise.

Sweep over the three networks, three chip configurations and batch sizes.
Paper headline: COMPASS achieves ~1.78x higher throughput than the baselines
(1.80x/1.71x/2.24x over greedy and 1.56x/1.31x/1.98x over layerwise for
VGG16 / ResNet18 / SqueezeNet).  Absolute numbers differ (our substrate is an
analytic simulator), but COMPASS must win on average, and throughput must
grow with batch size.
"""

import pytest

from repro.evaluation.experiments import fig6_speedups, fig6_throughput_comparison
from repro.evaluation.sweeps import SweepRunner
from repro.sim.metrics import geometric_mean
from repro.sim.report import format_table


def test_fig6_throughput_comparison(benchmark, experiment_config):
    runner = SweepRunner(ga_config=experiment_config.ga_config,
                         input_size=experiment_config.input_size)
    rows = benchmark.pedantic(
        fig6_throughput_comparison,
        kwargs={"config": experiment_config, "runner": runner},
        rounds=1, iterations=1,
    )
    print("\nFig. 6 — throughput comparison (reproduced)")
    print(format_table(rows, columns=["label", "scheme", "partitions", "throughput_ips",
                                      "latency_ms", "energy_per_inf_mj"]))

    speedups = fig6_speedups(rows)
    print("\nCOMPASS speed-ups over the baselines:")
    print(format_table(speedups))

    # COMPASS wins (or ties) against both baselines in the vast majority of
    # configurations and clearly on the geometric mean.
    vs_greedy = [s["speedup_vs_greedy"] for s in speedups if "speedup_vs_greedy" in s]
    vs_layerwise = [s["speedup_vs_layerwise"] for s in speedups if "speedup_vs_layerwise" in s]
    assert vs_greedy and vs_layerwise
    print(f"\ngeomean speedup vs greedy    : {geometric_mean(vs_greedy):.2f}x")
    print(f"geomean speedup vs layerwise : {geometric_mean(vs_layerwise):.2f}x")
    assert geometric_mean(vs_greedy) > 1.05
    assert geometric_mean(vs_layerwise) > 1.05
    losing = [s for s in vs_greedy + vs_layerwise if s < 0.95]
    assert len(losing) <= len(vs_greedy + vs_layerwise) * 0.2

    # Throughput increases with batch size for every (model, chip, scheme).
    by_config = {}
    for row in rows:
        by_config.setdefault((row["model"], row["chip"], row["scheme"]), []).append(
            (row["batch"], row["throughput_ips"])
        )
    for key, points in by_config.items():
        points.sort()
        throughputs = [t for _, t in points]
        assert throughputs[-1] > throughputs[0], key
