"""Full-size COMPASS GA benchmark: the paper's actual search scale.

The figure benchmarks shrink the GA (``ExperimentConfig.fast()`` or the
``tiny_ga`` fixture) so the whole harness stays fast; this benchmark runs
the paper-default ``GAConfig`` (population 100, 30 generations, Sec. IV-A3)
on ResNet18-M-16 — the workload the dense span-matrix engine exists for.
Unlike the quick headliners it is dominated by *population scoring* rather
than first-time span profiling, so it tracks the whole-population gather
path specifically.
"""

import pytest

from repro import envflags
from repro.core.ga import GAConfig
from repro.evaluation.experiments import ga_paper_scale


def test_ga_fullsize_resnet18(benchmark):
    result = benchmark.pedantic(
        ga_paper_scale,
        kwargs={"model": "resnet18", "chip_name": "M", "batch_size": 16},
        rounds=1, iterations=1,
    )

    defaults = GAConfig()
    print("\nFull-size GA — ResNet18-M-16, paper-default GAConfig "
          f"({defaults.population_size}x{defaults.generations})")
    print(f"generations run: {result.generations_run}, best fitness: {result.best_fitness:.3e}")
    print(f"evaluations: {result.evaluations} total, {result.unique_evaluations} unique, "
          f"{result.dedup_hits} dedup hits ({result.dedup_hit_rate:.0%})")
    print(f"span stats: {result.span_stats}")

    # the run is a real search at paper scale
    assert result.evaluations >= defaults.population_size
    assert result.evaluations == result.unique_evaluations + result.dedup_hits
    best = [record.best_fitness for record in result.history]
    assert all(b <= a * (1 + 1e-9) for a, b in zip(best, best[1:]))
    assert best[-1] <= best[0]

    # the dense span-matrix engine carried the population scoring: spans were
    # materialised into the matrix and the bulk of lookups were gather-served
    assert result.span_stats, "GA ran without the span engine"
    if envflags.span_matrix_enabled():
        assert result.span_stats["matrix_fills"] + result.span_stats["matrix_hits"] > 0
        assert result.span_stats["matrix_hit_rate"] > 0.5
